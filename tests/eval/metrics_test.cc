#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace awmoe {
namespace {

Example Ex(int64_t session, float label) {
  Example ex;
  ex.session_id = session;
  ex.label = label;
  return ex;
}

TEST(AucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(AucOf({1, 1, 0, 0}, {0.9, 0.8, 0.2, 0.1}), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(AucOf({1, 0}, {0.1, 0.9}), 0.0);
}

TEST(AucTest, RandomTiesGiveHalf) {
  EXPECT_DOUBLE_EQ(AucOf({1, 0, 1, 0}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(AucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(AucOf({1, 1}, {0.3, 0.7}), 0.5);
  EXPECT_DOUBLE_EQ(AucOf({0, 0}, {0.3, 0.7}), 0.5);
}

TEST(AucTest, MatchesPairCountingDefinition) {
  // Eq. 12 inner term: fraction of (pos, neg) pairs ranked correctly.
  std::vector<float> labels = {1, 0, 0, 1, 0};
  std::vector<double> scores = {0.9, 0.7, 0.3, 0.4, 0.5};
  int correct = 0, total = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t j = 0; j < labels.size(); ++j) {
      if (labels[i] > 0.5f && labels[j] < 0.5f) {
        ++total;
        if (scores[i] > scores[j]) ++correct;
      }
    }
  }
  EXPECT_NEAR(AucOf(labels, scores),
              static_cast<double>(correct) / total, 1e-12);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgOf({1, 0, 0}, {0.9, 0.5, 0.1}, 0), 1.0);
}

TEST(NdcgTest, WorstRankingMatchesHandComputation) {
  // Positive ranked last of three: DCG = 1/log2(4), IDCG = 1/log2(2).
  double expected = (1.0 / std::log2(4.0)) / (1.0 / std::log2(2.0));
  EXPECT_NEAR(NdcgOf({1, 0, 0}, {0.1, 0.5, 0.9}, 0), expected, 1e-12);
}

TEST(NdcgTest, CutoffIgnoresTail) {
  // Positive at rank 3 with k=2 -> DCG@2 = 0.
  EXPECT_DOUBLE_EQ(NdcgOf({1, 0, 0}, {0.1, 0.5, 0.9}, 2), 0.0);
}

TEST(NdcgTest, AllNegativeIsZero) {
  EXPECT_DOUBLE_EQ(NdcgOf({0, 0}, {0.5, 0.6}, 0), 0.0);
}

TEST(EvaluateRankingTest, GroupsBySession) {
  std::vector<Example> examples = {
      Ex(1, 1.0f), Ex(1, 0.0f),  // Session 1: perfect.
      Ex(2, 1.0f), Ex(2, 0.0f),  // Session 2: inverted.
  };
  std::vector<double> scores = {0.9, 0.1, 0.2, 0.8};
  RankingEvaluation eval = EvaluateRanking(examples, scores);
  EXPECT_EQ(eval.num_sessions, 2);
  ASSERT_EQ(eval.session_auc.size(), 2u);
  EXPECT_DOUBLE_EQ(eval.auc, 0.5);  // (1.0 + 0.0) / 2.
}

TEST(EvaluateRankingTest, SkipsSingleClassSessionsForAuc) {
  std::vector<Example> examples = {
      Ex(1, 1.0f), Ex(1, 0.0f),
      Ex(2, 0.0f), Ex(2, 0.0f),  // No positives: excluded from AUC.
  };
  std::vector<double> scores = {0.9, 0.1, 0.5, 0.4};
  RankingEvaluation eval = EvaluateRanking(examples, scores);
  EXPECT_EQ(eval.session_auc.size(), 1u);
  EXPECT_EQ(eval.session_ndcg.size(), 2u);  // NDCG keeps both.
}

TEST(EvaluateRankingTest, AtKRestrictsToTopItems) {
  // 12 items, positive ranked 11th: AUC@10 ignores it entirely (the
  // top-10 have one class -> 0.5), NDCG@10 is 0.
  std::vector<Example> examples;
  std::vector<double> scores;
  for (int i = 0; i < 12; ++i) {
    examples.push_back(Ex(1, i == 10 ? 1.0f : 0.0f));
    scores.push_back(1.0 - 0.05 * i);
  }
  RankingEvaluation eval = EvaluateRanking(examples, scores, /*k=*/10);
  EXPECT_DOUBLE_EQ(eval.auc_at_k, 0.5);
  EXPECT_DOUBLE_EQ(eval.ndcg_at_k, 0.0);
  EXPECT_GT(eval.auc, 0.0);
}

TEST(PairedTTestTest, IdenticalVectorsGivePOne) {
  std::vector<double> a = {0.5, 0.6, 0.7, 0.8};
  EXPECT_DOUBLE_EQ(PairedTTestPValue(a, a), 1.0);
}

TEST(PairedTTestTest, ClearDifferenceGivesSmallP) {
  Rng rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    double base = rng.Uniform();
    a.push_back(base + 0.05 + rng.Normal(0, 0.01));
    b.push_back(base);
  }
  EXPECT_LT(PairedTTestPValue(a, b), 1e-6);
}

TEST(PairedTTestTest, NoiseGivesLargeP) {
  Rng rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.Normal(0.5, 0.1));
    b.push_back(rng.Normal(0.5, 0.1));
  }
  EXPECT_GT(PairedTTestPValue(a, b), 0.01);
}

TEST(PairedTTestTest, SymmetricInSign) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    double base = rng.Uniform();
    a.push_back(base + 0.1 + rng.Normal(0, 0.05));
    b.push_back(base);
  }
  EXPECT_NEAR(PairedTTestPValue(a, b), PairedTTestPValue(b, a), 1e-12);
}

TEST(PairedBootstrapTest, AgreesWithTTestDirectionally) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 150; ++i) {
    double base = rng.Uniform();
    a.push_back(base + 0.08 + rng.Normal(0, 0.02));
    b.push_back(base);
  }
  double p_boot = PairedBootstrapPValue(a, b, 500, 5);
  double p_t = PairedTTestPValue(a, b);
  EXPECT_LT(p_boot, 0.05);
  EXPECT_LT(p_t, 0.05);
}

TEST(SessionPValueTest, AlignsOnCommonIds) {
  std::vector<int64_t> ids_a = {1, 2, 3, 4};
  std::vector<double> values_a = {0.8, 0.9, 0.7, 0.6};
  std::vector<int64_t> ids_b = {2, 3, 4, 5};
  std::vector<double> values_b = {0.9, 0.7, 0.6, 0.5};
  // Common ids 2,3,4 have identical values -> p = 1.
  EXPECT_DOUBLE_EQ(SessionPValue(ids_a, values_a, ids_b, values_b), 1.0);
}

TEST(SessionPValueTest, NoOverlapReturnsOne) {
  EXPECT_DOUBLE_EQ(SessionPValue({1}, {0.5}, {2}, {0.6}), 1.0);
}

TEST(OverallAucTest, PooledComputation) {
  EXPECT_DOUBLE_EQ(OverallAuc({1, 0, 1, 0}, {0.9, 0.2, 0.8, 0.3}), 1.0);
}

}  // namespace
}  // namespace awmoe
