#include "util/hash.h"

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "gtest/gtest.h"
#include "serving/model_pool.h"

namespace awmoe {
namespace {

// ---------------------------------------------------------------------
// SetHashAdd: the order-insensitive combiner the score cache keys on.
// ---------------------------------------------------------------------

uint64_t SetOf(const std::vector<uint64_t>& elements) {
  uint64_t h = 0;
  for (uint64_t e : elements) h = SetHashAdd(h, e);
  return h;
}

TEST(SetHashAddTest, PermutationInvariant) {
  const std::vector<uint64_t> abc = {11, 22, 33};
  EXPECT_EQ(SetOf({11, 22, 33}), SetOf({33, 11, 22}));
  EXPECT_EQ(SetOf({11, 22, 33}), SetOf({22, 33, 11}));
  EXPECT_EQ(SetOf(abc), SetOf({33, 22, 11}));
}

TEST(SetHashAddTest, MultiplicityMatters) {
  EXPECT_NE(SetOf({7, 7, 9}), SetOf({7, 9}));
  EXPECT_NE(SetOf({7}), SetOf({7, 7}));
}

TEST(SetHashAddTest, EmptySetIsZeroAndDistinctFromZeroElement) {
  EXPECT_EQ(SetOf({}), 0u);
  // A set containing the element hash 0 must not look like the empty
  // set: the combiner mixes before summing.
  EXPECT_NE(SetOf({0}), SetOf({}));
}

TEST(SetHashAddTest, StructuredElementsDoNotCancel) {
  // Consecutive small hashes, the worst case for a plain sum: {n, n+2}
  // vs {n+1, n+1} sum identically without the avalanche mix.
  EXPECT_NE(SetOf({100, 102}), SetOf({101, 101}));
  EXPECT_NE(SetOf({1, 4}), SetOf({2, 3}));
}

// ---------------------------------------------------------------------
// GateContextHash: section-boundary and zero-value collision audit.
// ---------------------------------------------------------------------

Example BaseExample() {
  Example ex;
  ex.user_id = 5;
  ex.query_id = 9;
  ex.query_cat = 3;
  ex.behavior_items = {1, 2};
  ex.behavior_cats = {4, 6};
  ex.behavior_brands = {7, 8};
  ex.behavior_attrs = {0.5f, 1.0f, -1.0f, 0.25f, 2.0f, 0.0f};
  ex.target_item = 42;
  ex.target_cat = 4;
  ex.target_brand = 7;
  ex.target_shop = 2;
  ex.target_attrs[0] = 0.1f;
  ex.target_attrs[1] = -0.2f;
  ex.target_attrs[2] = 0.3f;
  ex.age_segment = 1;
  ex.numeric = {1.0f, 2.0f, 3.0f};
  return ex;
}

TEST(GateContextHashTest, SectionBoundaryShiftChangesHash) {
  // The same id stream split differently across adjacent sections: the
  // per-section length tags must keep these apart.
  Example a = BaseExample();
  a.behavior_items = {1, 2};
  a.behavior_cats = {};
  Example b = BaseExample();
  b.behavior_items = {1};
  b.behavior_cats = {2};
  EXPECT_NE(GateContextHash(a), GateContextHash(b));
}

TEST(GateContextHashTest, EmptyVersusZeroElementDiffers) {
  // Padding id 0 as a real element is not the same context as no
  // element at all (the classic FNV zero-absorption trap: x ^= 0 is a
  // no-op, only the length tag tells them apart).
  Example a = BaseExample();
  a.behavior_items = {};
  Example b = BaseExample();
  b.behavior_items = {0};
  EXPECT_NE(GateContextHash(a), GateContextHash(b));

  Example c = BaseExample();
  c.behavior_attrs = {};
  Example d = BaseExample();
  d.behavior_attrs = {0.0f};
  EXPECT_NE(GateContextHash(c), GateContextHash(d));
}

TEST(GateContextHashTest, FieldOrderIsNotCommutative) {
  // Swapping values across fields must change the hash (FNV-1a chains
  // state, so field order is significant by construction).
  Example a = BaseExample();
  a.user_id = 1;
  a.query_id = 2;
  Example b = BaseExample();
  b.user_id = 2;
  b.query_id = 1;
  EXPECT_NE(GateContextHash(a), GateContextHash(b));
}

TEST(GateContextHashTest, EverySessionFieldIsCovered) {
  const Example base = BaseExample();
  const uint64_t h = GateContextHash(base);

  Example ex = base;
  ex.user_id += 1;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.query_id += 1;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.query_cat += 1;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.behavior_items[0] += 1;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.behavior_cats[1] += 1;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.behavior_brands[0] += 1;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.behavior_attrs[2] += 0.5f;
  EXPECT_NE(GateContextHash(ex), h);
  ex = base;
  ex.behavior_items.push_back(3);
  EXPECT_NE(GateContextHash(ex), h);
}

TEST(GateContextHashTest, IgnoresCandidateFields) {
  // The gate (and the session encoding it stamps) never reads the
  // target item, so two candidates of one session share the stamp.
  Example a = BaseExample();
  Example b = BaseExample();
  b.target_item = 77;
  b.target_cat = 8;
  b.target_brand = 9;
  b.target_shop = 1;
  b.target_attrs[0] = 9.0f;
  b.numeric[0] = 5.0f;
  EXPECT_EQ(GateContextHash(a), GateContextHash(b));
}

TEST(GateContextHashTest, NegativeZeroAttrDiffersFromPositiveZero) {
  // Attrs hash bitwise (bit_cast), so -0.0f and 0.0f are distinct
  // contexts — conservative staleness: never a wrong reuse.
  Example a = BaseExample();
  a.behavior_attrs[0] = 0.0f;
  Example b = BaseExample();
  b.behavior_attrs[0] = -0.0f;
  EXPECT_NE(GateContextHash(a), GateContextHash(b));
}

// ---------------------------------------------------------------------
// SessionHistoryHash: the score cache's invalidation trigger.
// ---------------------------------------------------------------------

TEST(SessionHistoryHashTest, ChangesWhenHistoryGrows) {
  const Example base = BaseExample();
  Example grown = base;
  grown.behavior_items.push_back(3);
  grown.behavior_cats.push_back(4);
  grown.behavior_brands.push_back(7);
  EXPECT_NE(SessionHistoryHash(base), SessionHistoryHash(grown));
}

TEST(SessionHistoryHashTest, CoversAgeSegmentUnlikeGateContext) {
  Example a = BaseExample();
  Example b = BaseExample();
  b.age_segment += 1;
  EXPECT_NE(SessionHistoryHash(a), SessionHistoryHash(b));
}

TEST(SessionHistoryHashTest, IgnoresCandidateFields) {
  Example a = BaseExample();
  Example b = BaseExample();
  b.target_item = 99;
  b.numeric[1] = -4.0f;
  EXPECT_EQ(SessionHistoryHash(a), SessionHistoryHash(b));
}

// ---------------------------------------------------------------------
// CandidateScoreHash: full score-relevant content coverage.
// ---------------------------------------------------------------------

TEST(CandidateScoreHashTest, CoversEveryScoreRelevantField) {
  const Example base = BaseExample();
  const uint64_t h = CandidateScoreHash(base);

  Example ex = base;
  ex.target_item += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.target_cat += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.target_brand += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.target_shop += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.target_attrs[1] += 0.5f;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.numeric[2] += 1.0f;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.numeric.push_back(0.0f);
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.user_id += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.age_segment += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
  ex = base;
  ex.behavior_items[0] += 1;
  EXPECT_NE(CandidateScoreHash(ex), h);
}

TEST(CandidateScoreHashTest, IgnoresLabelsAndAnnotations) {
  // Labels, oracle scores and grouping annotations never reach a batch
  // row, so they must not invalidate cached scores.
  Example a = BaseExample();
  Example b = BaseExample();
  b.label = 1.0f;
  b.session_id = 777;
  b.latent_style = 4;
  b.is_category_new = true;
  b.history_len = 12;
  b.oracle_utility = 0.9;
  EXPECT_EQ(CandidateScoreHash(a), CandidateScoreHash(b));
}

}  // namespace
}  // namespace awmoe
