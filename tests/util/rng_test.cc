#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace awmoe {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedDifferentStream) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRangeAndCoversAll) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntWithBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LT(v, 4);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 10);
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (int64_t s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ExponentialIsPositiveWithMatchingMean) {
  Rng rng(53);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(59);
  Rng child = a.Fork();
  // The child should not replay the parent stream.
  Rng b(59);
  b.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.NextU64() == a.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(ZipfDistributionTest, UniformWhenExponentZero) {
  Rng rng(61);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.1, 0.01);
  }
}

TEST(ZipfDistributionTest, HeadHeavierWithLargerExponent) {
  Rng rng(67);
  ZipfDistribution zipf(100, 1.2);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 10) ++head;
  }
  // With s=1.2 the top-10 of 100 items should carry well over half the mass.
  EXPECT_GT(head, n / 2);
}

TEST(ZipfDistributionTest, InRange) {
  Rng rng(71);
  ZipfDistribution zipf(7, 0.8);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

}  // namespace
}  // namespace awmoe
