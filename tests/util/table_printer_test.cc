#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace awmoe {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table("Results");
  table.SetHeader({"Model", "AUC"});
  table.AddRow({"DNN", "0.8201"});
  table.AddRow({"AW-MoE", "0.8459"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("Results"), std::string::npos);
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("AW-MoE"), std::string::npos);
  EXPECT_NE(out.find("0.8459"), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table;
  table.SetHeader({"A", "B"});
  table.AddRow({"long-name", "1"});
  table.AddRow({"x", "2"});
  std::string out = table.ToString();
  // Every rendered line must have equal length.
  size_t line_len = 0;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    size_t len = end - start;
    if (line_len == 0) line_len = len;
    EXPECT_EQ(len, line_len);
    start = end + 1;
  }
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter table;
  table.SetHeader({"A", "B", "C"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  std::string out = table.ToString();
  EXPECT_FALSE(out.empty());
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter table;
  table.SetHeader({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string out = table.ToString();
  // Rules: top, under header, separator, bottom = 4 lines starting with '+'.
  int rules = 0;
  size_t start = 0;
  while (start < out.size()) {
    if (out[start] == '+') ++rules;
    size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TablePrinterTest, EmptyTable) {
  TablePrinter table;
  EXPECT_EQ(table.ToString(), "");
  TablePrinter titled("T");
  EXPECT_EQ(titled.ToString(), "T\n");
}

}  // namespace
}  // namespace awmoe
