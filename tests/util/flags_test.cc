#include "util/flags.h"

#include <gtest/gtest.h>

namespace awmoe {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (auto& s : storage_) argv_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(FlagsTest, ParsesAllTypes) {
  int64_t n = 1;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;

  FlagSet flags;
  flags.AddInt("n", &n, "count");
  flags.AddDouble("rate", &rate, "a rate");
  flags.AddString("name", &name, "a name");
  flags.AddBool("verbose", &verbose, "verbosity");

  ArgvBuilder args({"--n=42", "--rate", "0.25", "--name=test", "--verbose"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(name, "test");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  int64_t n = 7;
  FlagSet flags;
  flags.AddInt("n", &n, "count");
  ArgvBuilder args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 7);
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagSet flags;
  ArgvBuilder args({"--nope=1"});
  Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntIsError) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt("n", &n, "count");
  ArgvBuilder args({"--n=abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadBoolIsError) {
  bool b = false;
  FlagSet flags;
  flags.AddBool("b", &b, "flag");
  ArgvBuilder args({"--b=maybe"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, ExplicitBoolValues) {
  bool b = true;
  FlagSet flags;
  flags.AddBool("b", &b, "flag");
  ArgvBuilder args({"--b=false"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_FALSE(b);
}

TEST(FlagsTest, MissingValueIsError) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt("n", &n, "count");
  ArgvBuilder args({"--n"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, PositionalArgumentIsError) {
  FlagSet flags;
  ArgvBuilder args({"stray"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, HelpReturnsNotFound) {
  FlagSet flags("test program");
  ArgvBuilder args({"--help"});
  EXPECT_EQ(flags.Parse(args.argc(), args.argv()).code(),
            StatusCode::kNotFound);
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  int64_t n = 9;
  FlagSet flags("my tool");
  flags.AddInt("count", &n, "how many");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("9"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace awmoe
