#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace awmoe {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/awmoe_csv_test.csv";
};

TEST_F(CsvWriterTest, WritesRows) {
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.WriteRow({"x", "y"}).ok());
  ASSERT_TRUE(writer.WriteRow({"1", "2.5"}).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(ReadFile(path_), "x,y\n1,2.5\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.WriteRow({"a,b", "he said \"hi\"", "line\nbreak"}).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(ReadFile(path_), "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST_F(CsvWriterTest, WriteBeforeOpenFails) {
  CsvWriter writer;
  EXPECT_EQ(writer.WriteRow({"x"}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CsvWriterTest, OpenBadPathFails) {
  CsvWriter writer;
  EXPECT_EQ(writer.Open("/nonexistent-dir/x.csv").code(),
            StatusCode::kIOError);
}

TEST_F(CsvWriterTest, EmptyRowProducesBlankLine) {
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.WriteRow({}).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(ReadFile(path_), "\n");
}

}  // namespace
}  // namespace awmoe
