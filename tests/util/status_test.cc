#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace awmoe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("q full").ToString(),
            "ResourceExhausted: q full");
  EXPECT_EQ(Status::Unavailable("stopped").ToString(),
            "Unavailable: stopped");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  AWMOE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(3).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AWMOE_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> odd = Quarter(6);  // 6/2 = 3 which is odd.
  EXPECT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace awmoe
