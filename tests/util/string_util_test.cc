#include "util/string_util.h"

#include <gtest/gtest.h>

namespace awmoe {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d items, %.2f rate", 5, 0.25), "5 items, 0.25 rate");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_str(500, 'x');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrSplitTest, SplitsOnChar) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",x", ','), (std::vector<std::string>{"", "x"}));
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(FormatDoubleTest, RoundsToDigits) {
  EXPECT_EQ(FormatDouble(0.84591, 4), "0.8459");
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(-1.2345, 1), "-1.2");
}

TEST(FormatPValueTest, ScientificStyle) {
  EXPECT_EQ(FormatPValue(1.33e-15), "1.33E-15");
  EXPECT_EQ(FormatPValue(0.0267), "2.67E-02");
}

TEST(FormatPValueTest, ClampsAtPaperFloor) {
  // The paper reports values below 1e-20 as "1.00E-20".
  EXPECT_EQ(FormatPValue(1e-30), "1.00E-20");
  EXPECT_EQ(FormatPValue(0.0), "1.00E-20");
}

}  // namespace
}  // namespace awmoe
