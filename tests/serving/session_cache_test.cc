#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serving/model_pool.h"
#include "util/hash.h"

namespace awmoe {
namespace {

// ---------------------------------------------------------------------
// SessionGateCache (also backs the level-2 encoding store).
// ---------------------------------------------------------------------

TEST(SessionGateCacheTest, CapacityOneKeepsOnlyNewestSession) {
  SessionGateCache cache;
  cache.Put(1, 10, {1.0f}, /*capacity=*/1);
  cache.Put(2, 20, {2.0f}, /*capacity=*/1);
  EXPECT_EQ(cache.size(), 1);

  std::vector<float> row;
  EXPECT_EQ(cache.Lookup(1, 10, &row), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(2, 20, &row), CacheLookup::kHit);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], 2.0f);
}

TEST(SessionGateCacheTest, LookupRefreshesLruOrder) {
  SessionGateCache cache;
  cache.Put(1, 10, {1.0f}, 2);
  cache.Put(2, 20, {2.0f}, 2);
  std::vector<float> row;
  // Touch 1, making 2 the LRU entry; inserting 3 must evict 2.
  EXPECT_EQ(cache.Lookup(1, 10, &row), CacheLookup::kHit);
  cache.Put(3, 30, {3.0f}, 2);
  EXPECT_EQ(cache.Lookup(2, 20, &row), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(1, 10, &row), CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup(3, 30, &row), CacheLookup::kHit);
  EXPECT_EQ(cache.size(), 2);
}

TEST(SessionGateCacheTest, InterleavedPutsAndLookupsEvictLeastRecent) {
  SessionGateCache cache;
  std::vector<float> row;
  cache.Put(1, 1, {1.0f}, 3);
  cache.Put(2, 2, {2.0f}, 3);
  cache.Put(3, 3, {3.0f}, 3);
  EXPECT_EQ(cache.Lookup(1, 1, &row), CacheLookup::kHit);  // LRU: {1,3,2}.
  EXPECT_EQ(cache.Lookup(2, 2, &row), CacheLookup::kHit);  // LRU: {2,1,3}.
  cache.Put(4, 4, {4.0f}, 3);                              // Evicts 3.
  EXPECT_EQ(cache.Lookup(3, 3, &row), CacheLookup::kMiss);
  cache.Put(5, 5, {5.0f}, 3);  // Evicts 1.
  EXPECT_EQ(cache.Lookup(1, 1, &row), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(2, 2, &row), CacheLookup::kHit);
  EXPECT_EQ(cache.size(), 3);
}

TEST(SessionGateCacheTest, ChangedContextHashIsStaleAndEvicts) {
  SessionGateCache cache;
  cache.Put(7, 100, {1.0f}, 8);
  std::vector<float> row;
  EXPECT_EQ(cache.Lookup(7, 200, &row), CacheLookup::kStale);
  // The stale entry is gone: a repeat of the OLD context now misses
  // instead of serving a row computed under different inputs.
  EXPECT_EQ(cache.Lookup(7, 100, &row), CacheLookup::kMiss);
  EXPECT_EQ(cache.size(), 0);
}

TEST(SessionGateCacheTest, PutOverwritesSameSession) {
  SessionGateCache cache;
  cache.Put(7, 100, {1.0f}, 8);
  cache.Put(7, 200, {2.0f}, 8);
  EXPECT_EQ(cache.size(), 1);
  std::vector<float> row;
  EXPECT_EQ(cache.Lookup(7, 200, &row), CacheLookup::kHit);
  EXPECT_EQ(row[0], 2.0f);
}

TEST(SessionGateCacheTest, BytesTrackInsertAndEvict) {
  SessionGateCache cache;
  EXPECT_EQ(cache.bytes(), 0);
  cache.Put(1, 1, std::vector<float>(16, 0.5f), 2);
  const int64_t one = cache.bytes();
  EXPECT_GE(one, static_cast<int64_t>(16 * sizeof(float)));
  cache.Put(2, 2, std::vector<float>(16, 0.5f), 2);
  EXPECT_EQ(cache.bytes(), 2 * one);
  cache.Put(3, 3, std::vector<float>(16, 0.5f), 2);  // Evicts 1.
  EXPECT_EQ(cache.bytes(), 2 * one);
  cache.Put(4, 4, std::vector<float>(16, 0.5f), 0);  // No-op: disabled.
  EXPECT_EQ(cache.bytes(), 2 * one);
  EXPECT_EQ(cache.size(), 2);
}

TEST(SessionGateCacheTest, SizeConsistentUnderConcurrentAccess) {
  SessionGateCache cache;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  constexpr int64_t kCapacity = 32;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &failed] {
      std::vector<float> row;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int64_t session = (t * kOpsPerThread + i) % 64;
        cache.Put(session, static_cast<uint64_t>(session), {1.0f}, kCapacity);
        cache.Lookup(session, static_cast<uint64_t>(session), &row);
        const int64_t size = cache.size();
        if (size < 0 || size > kCapacity) failed = true;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed);
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GT(cache.size(), 0);
}

// ---------------------------------------------------------------------
// SessionScoreCache (level-1 result cache).
// ---------------------------------------------------------------------

/// Builds the (set hash, per-item hashes) pair the engine would compute
/// for a candidate list with the given element hashes.
uint64_t SetOf(const std::vector<uint64_t>& hashes) {
  uint64_t set = 0;
  for (uint64_t h : hashes) set = SetHashAdd(set, h);
  return set;
}

TEST(SessionScoreCacheTest, HitReturnsScoresInRequestOrder) {
  SessionScoreCache cache;
  const std::vector<uint64_t> hashes = {30, 10, 20};
  cache.Put(1, SetOf(hashes), /*history_hash=*/5, hashes,
            {0.3f, 0.1f, 0.2f}, 8);

  // Same candidate set, permuted request order: still a hit, and each
  // slot gets ITS candidate's score, not the stored order's.
  const std::vector<uint64_t> permuted = {10, 20, 30};
  std::vector<float> out(3);
  EXPECT_EQ(cache.Lookup(1, SetOf(permuted), 5, permuted, out),
            CacheLookup::kHit);
  EXPECT_EQ(out[0], 0.1f);
  EXPECT_EQ(out[1], 0.2f);
  EXPECT_EQ(out[2], 0.3f);
}

TEST(SessionScoreCacheTest, DifferentCandidateSetMisses) {
  SessionScoreCache cache;
  const std::vector<uint64_t> hashes = {10, 20};
  cache.Put(1, SetOf(hashes), 5, hashes, {0.1f, 0.2f}, 8);
  std::vector<float> out(2);
  const std::vector<uint64_t> other = {10, 21};
  EXPECT_EQ(cache.Lookup(1, SetOf(other), 5, other, out),
            CacheLookup::kMiss);
  // Subset with the same elements but different size also misses.
  std::vector<float> one(1);
  const std::vector<uint64_t> subset = {10};
  EXPECT_EQ(cache.Lookup(1, SetOf(subset), 5, subset, one),
            CacheLookup::kMiss);
}

TEST(SessionScoreCacheTest, SetHashCollisionFailsPerElementMatchAndMisses) {
  SessionScoreCache cache;
  const std::vector<uint64_t> hashes = {10, 20};
  const uint64_t set = SetOf(hashes);
  cache.Put(1, set, 5, hashes, {0.1f, 0.2f}, 8);
  // Forge a lookup that routes to the same entry (same set hash) but
  // carries different element hashes: the per-element verification
  // must refuse to serve it.
  std::vector<float> out(2);
  EXPECT_EQ(cache.Lookup(1, set, 5, {11, 21}, out), CacheLookup::kMiss);
}

TEST(SessionScoreCacheTest, HistoryChangeInvalidatesWholeSession) {
  SessionScoreCache cache;
  const std::vector<uint64_t> page1 = {10, 20};
  const std::vector<uint64_t> page2 = {30, 40};
  cache.Put(1, SetOf(page1), /*history_hash=*/5, page1, {0.1f, 0.2f}, 8);
  cache.Put(1, SetOf(page2), /*history_hash=*/5, page2, {0.3f, 0.4f}, 8);
  cache.Put(2, SetOf(page1), /*history_hash=*/5, page1, {0.5f, 0.6f}, 8);
  EXPECT_EQ(cache.size(), 3);

  // Session 1's history moved on: BOTH its pages are stale; session 2
  // is untouched.
  std::vector<float> out(2);
  EXPECT_EQ(cache.Lookup(1, SetOf(page1), /*history_hash=*/6, page1, out),
            CacheLookup::kStale);
  EXPECT_EQ(cache.Lookup(1, SetOf(page2), 6, page2, out),
            CacheLookup::kMiss);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.Lookup(2, SetOf(page1), 5, page1, out),
            CacheLookup::kHit);
}

TEST(SessionScoreCacheTest, PutWithNewHistoryEvictsOldStampEntries) {
  SessionScoreCache cache;
  const std::vector<uint64_t> page1 = {10, 20};
  const std::vector<uint64_t> page2 = {30, 40};
  cache.Put(1, SetOf(page1), /*history_hash=*/5, page1, {0.1f, 0.2f}, 8);
  cache.Put(1, SetOf(page2), /*history_hash=*/6, page2, {0.3f, 0.4f}, 8);
  // One history stamp per session: the page-1 entry (old stamp) is gone.
  EXPECT_EQ(cache.size(), 1);
  std::vector<float> out(2);
  EXPECT_EQ(cache.Lookup(1, SetOf(page2), 6, page2, out),
            CacheLookup::kHit);
  // Asking with the OLD stamp is a history mismatch in its own right:
  // stale, and the session's entries are dropped.
  EXPECT_EQ(cache.Lookup(1, SetOf(page1), 5, page1, out),
            CacheLookup::kStale);
  EXPECT_EQ(cache.size(), 0);
}

TEST(SessionScoreCacheTest, CapacityOneEvictsOldestEntry) {
  SessionScoreCache cache;
  const std::vector<uint64_t> a = {10};
  const std::vector<uint64_t> b = {20};
  cache.Put(1, SetOf(a), 5, a, {0.1f}, 1);
  cache.Put(2, SetOf(b), 5, b, {0.2f}, 1);
  EXPECT_EQ(cache.size(), 1);
  std::vector<float> out(1);
  EXPECT_EQ(cache.Lookup(1, SetOf(a), 5, a, out), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(2, SetOf(b), 5, b, out), CacheLookup::kHit);
}

TEST(SessionScoreCacheTest, LookupRefreshesLruOrder) {
  SessionScoreCache cache;
  const std::vector<uint64_t> a = {10};
  const std::vector<uint64_t> b = {20};
  const std::vector<uint64_t> c = {30};
  cache.Put(1, SetOf(a), 5, a, {0.1f}, 2);
  cache.Put(2, SetOf(b), 5, b, {0.2f}, 2);
  std::vector<float> out(1);
  EXPECT_EQ(cache.Lookup(1, SetOf(a), 5, a, out), CacheLookup::kHit);
  cache.Put(3, SetOf(c), 5, c, {0.3f}, 2);  // Evicts 2, not the touched 1.
  EXPECT_EQ(cache.Lookup(2, SetOf(b), 5, b, out), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(1, SetOf(a), 5, a, out), CacheLookup::kHit);
}

TEST(SessionScoreCacheTest, BytesTrackPayloadAndEviction) {
  SessionScoreCache cache;
  EXPECT_EQ(cache.bytes(), 0);
  const std::vector<uint64_t> a = {10, 20, 30, 40};
  cache.Put(1, SetOf(a), 5, a, {0.1f, 0.2f, 0.3f, 0.4f}, 4);
  const int64_t one = cache.bytes();
  EXPECT_GE(one, static_cast<int64_t>(4 * (sizeof(float) + sizeof(uint64_t))));
  const std::vector<uint64_t> b = {50, 60, 70, 80};
  cache.Put(2, SetOf(b), 5, b, {0.5f, 0.6f, 0.7f, 0.8f}, 4);
  EXPECT_EQ(cache.bytes(), 2 * one);
  cache.Put(3, SetOf(a), 5, a, {0.1f, 0.2f, 0.3f, 0.4f}, 1);  // Trims to 1.
  EXPECT_EQ(cache.bytes(), one);
}

TEST(SessionScoreCacheTest, SizeConsistentUnderConcurrentAccess) {
  SessionScoreCache cache;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  constexpr int64_t kCapacity = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &failed] {
      std::vector<float> out(2);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int64_t session = (t * kOpsPerThread + i) % 24;
        const std::vector<uint64_t> hashes = {
            static_cast<uint64_t>(session * 2),
            static_cast<uint64_t>(session * 2 + 1)};
        // Alternate history stamps so invalidation paths run too.
        const uint64_t history = static_cast<uint64_t>(i % 2);
        cache.Put(session, SetOf(hashes), history, hashes, {0.1f, 0.2f},
                  kCapacity);
        cache.Lookup(session, SetOf(hashes), history, hashes, out);
        const int64_t size = cache.size();
        if (size < 0 || size > kCapacity) failed = true;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed);
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GE(cache.bytes(), 0);
}

}  // namespace
}  // namespace awmoe
