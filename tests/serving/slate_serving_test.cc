// Slate scoring through the serving stack: a slate-scoring model's
// request rows stay atomic within one forward (scores independent of
// micro-batch composition under concurrent async load), the level-1
// score cache is bypassed for slate models (a cached pointwise score
// would drop the slate context), the slate stats counters are exact,
// and the two-stage retrieve -> rerank pipeline composes both models
// behind one engine. Worker threads only collect results; assertions
// run on the main thread after joining.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "models/listwise/listwise_reranker.h"
#include "nn/inference.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"
#include "serving/two_stage.h"
#include "util/rng.h"

namespace awmoe {
namespace {

// Solo-vs-batched comparisons are bitwise at every tier (the slate
// attention core is always the scalar slate-local kernels), but the
// suite pins the reference tier so failures reproduce identically on
// every host.
const bool kPinnedReferenceTier = [] {
  SetKernelTier(KernelTier::kReference);
  return true;
}();

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

ListwiseDims SmallListwiseDims() {
  ListwiseDims ldims;
  ldims.d_model = 8;
  ldims.num_heads = 2;
  ldims.num_layers = 1;
  ldims.ffn_hidden = {12};
  ldims.head_hidden = {6};
  ldims.max_slate_len = 64;
  return ldims;
}

class SlateServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 200;
    jd.num_items = 150;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 50;
    jd.test_sessions = 40;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 777;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng pointwise_rng(17);
    pointwise_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(),
                                 &pointwise_rng);
    Rng listwise_rng(29);
    listwise_ = new ListwiseReranker(data_->meta, SmallAwMoeConfig().dims,
                                     SmallListwiseDims(), &listwise_rng);
    sessions_ = new std::vector<std::vector<const Example*>>(
        GroupBySession(data_->full_test));
  }
  static void TearDownTestSuite() {
    delete sessions_;
    delete listwise_;
    delete pointwise_;
    delete standardizer_;
    delete data_;
    sessions_ = nullptr;
    listwise_ = nullptr;
    pointwise_ = nullptr;
    standardizer_ = nullptr;
    data_ = nullptr;
  }

  /// Both models behind one pool: "aw-moe" (default route, pointwise)
  /// and "listwise" (slate-scoring).
  static std::unique_ptr<ModelPool> MakeRegistry(int replicas = 1) {
    ModelPoolOptions options;
    options.replicas = replicas;
    auto pool =
        std::make_unique<ModelPool>(data_->meta, standardizer_, options);
    pool->Register("aw-moe", pointwise_);
    pool->Register("listwise", listwise_);
    return pool;
  }

  static RankRequest RequestFor(size_t s, const std::string& model) {
    const auto& session = (*sessions_)[s % sessions_->size()];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.model = model;
    request.items = session;
    return request;
  }

  static int64_t ItemsOf(size_t s) {
    return static_cast<int64_t>((*sessions_)[s % sessions_->size()].size());
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* pointwise_;
  static ListwiseReranker* listwise_;
  static std::vector<std::vector<const Example*>>* sessions_;
};

JdDataset* SlateServingTest::data_ = nullptr;
Standardizer* SlateServingTest::standardizer_ = nullptr;
AwMoeRanker* SlateServingTest::pointwise_ = nullptr;
ListwiseReranker* SlateServingTest::listwise_ = nullptr;
std::vector<std::vector<const Example*>>* SlateServingTest::sessions_ =
    nullptr;

// ---------------------------------------------------------------------
// The score-cache bypass: an exact repeat request to a slate-scoring
// model must re-run the forward (a level-1 hit would freeze the scores
// against future slate recompositions), while the pointwise model's
// repeat keeps hitting as before.
// ---------------------------------------------------------------------

TEST_F(SlateServingTest, ScoreCacheBypassedForSlateScoringModel) {
  auto registry = MakeRegistry();
  ServingEngine engine(registry.get());  // score_cache_capacity = 4096 on.

  RankResponse first = engine.Rank(RequestFor(0, "listwise"));
  RankResponse second = engine.Rank(RequestFor(0, "listwise"));
  ASSERT_TRUE(first.status.ok()) << first.status;
  ASSERT_TRUE(second.status.ok()) << second.status;
  // Both runs executed a forward on a leased replica lane; neither was
  // served from the level-1 cache.
  EXPECT_FALSE(first.score_cache_hit);
  EXPECT_FALSE(second.score_cache_hit);
  EXPECT_GE(first.replica, 0);
  EXPECT_GE(second.replica, 0);
  // Determinism still holds — same slate, same snapshot, same scores.
  ASSERT_EQ(first.scores.size(), second.scores.size());
  for (size_t i = 0; i < first.scores.size(); ++i) {
    EXPECT_EQ(first.scores[i], second.scores[i]) << "item " << i;
  }

  // The pointwise control: the identical repeat IS a level-1 hit.
  RankResponse miss = engine.Rank(RequestFor(0, "aw-moe"));
  RankResponse hit = engine.Rank(RequestFor(0, "aw-moe"));
  ASSERT_TRUE(hit.status.ok()) << hit.status;
  EXPECT_FALSE(miss.score_cache_hit);
  EXPECT_TRUE(hit.score_cache_hit);
  EXPECT_EQ(hit.replica, -1);

  // Each listwise Rank was one single-slate micro-batch.
  EXPECT_EQ(engine.stats().slates(), 2);
  EXPECT_EQ(engine.stats().slate_items(), 2 * ItemsOf(0));
}

// ---------------------------------------------------------------------
// Oversized-slate admission: a request with more candidates than the
// listwise model's max slate length is REJECTED with kInvalidArgument
// on both serving fronts — it must never reach the forward path, whose
// slate-length CHECK would abort the whole process. Valid requests in
// the same batch are served normally, and the pointwise route (no
// slate cap) still accepts arbitrarily large candidate sets.
// ---------------------------------------------------------------------

TEST_F(SlateServingTest, OversizedSlateRejectedNotAborted) {
  auto registry = MakeRegistry();
  ServingEngine engine(registry.get());
  const int64_t cap = listwise_->MaxSlateItems();
  ASSERT_GT(cap, 0);

  RankRequest oversized = RequestFor(0, "listwise");
  const Example* filler = oversized.items[0];
  while (static_cast<int64_t>(oversized.items.size()) <= cap) {
    oversized.items.push_back(filler);
  }

  // Sync front: the oversized request is rejected, its neighbours in
  // the same RankBatch are served.
  std::vector<RankRequest> mixed;
  mixed.push_back(RequestFor(1, "listwise"));
  mixed.push_back(oversized);
  mixed.push_back(RequestFor(2, "listwise"));
  std::vector<RankResponse> responses = engine.RankBatch(mixed);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].status.ok()) << responses[0].status;
  EXPECT_EQ(responses[0].scores.size(), mixed[0].items.size());
  EXPECT_EQ(responses[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(responses[1].scores.empty());
  EXPECT_EQ(responses[1].replica, -1);
  EXPECT_EQ(responses[1].model, "listwise");
  EXPECT_TRUE(responses[2].status.ok()) << responses[2].status;
  EXPECT_EQ(responses[2].scores.size(), mixed[2].items.size());
  // Only the served slates hit the counters.
  EXPECT_EQ(engine.stats().slates(), 2);

  // Async front: rejected before occupying queue space, future resolves
  // with the same status.
  RankResponse async_response = engine.Submit(oversized).get();
  EXPECT_EQ(async_response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(async_response.scores.empty());
  EXPECT_EQ(async_response.model, "listwise");

  // The engine survives both rejections and keeps serving.
  RankResponse after = engine.Rank(RequestFor(3, "listwise"));
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_EQ(after.scores.size(), (*sessions_)[3 % sessions_->size()].size());

  // The pointwise route has no slate cap: the same oversized candidate
  // set serves fine.
  RankRequest pointwise = oversized;
  pointwise.model = "aw-moe";
  RankResponse served = engine.Rank(pointwise);
  ASSERT_TRUE(served.status.ok()) << served.status;
  EXPECT_EQ(served.scores.size(), pointwise.items.size());
}

// ---------------------------------------------------------------------
// Slate atomicity under concurrent async load: four threads storm
// Submit with mixed slate sizes; every response must be bitwise what a
// solo synchronous Rank of just that slate computes, no matter which
// other slates shared its micro-batch.
// ---------------------------------------------------------------------

TEST_F(SlateServingTest, ConcurrentSlateSubmitsMatchSoloRankBitwise) {
  // Expected scores: each session alone through a fresh engine.
  auto reference_registry = MakeRegistry();
  ServingEngine reference(reference_registry.get());
  std::vector<std::vector<double>> expected(sessions_->size());
  for (size_t s = 0; s < sessions_->size(); ++s) {
    RankResponse solo = reference.Rank(RequestFor(s, "listwise"));
    ASSERT_TRUE(solo.status.ok()) << solo.status;
    expected[s] = solo.scores;
  }

  auto registry = MakeRegistry(/*replicas=*/2);
  ServingEngineOptions options;
  options.max_queue_delay_ms = 1.0;  // Coalesce aggressively.
  ServingEngine engine(registry.get(), options);

  constexpr size_t kThreads = 4;
  const size_t kSubmits = 2 * sessions_->size();
  std::vector<std::vector<RankResponse>> results(
      kThreads, std::vector<RankResponse>(kSubmits));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, kSubmits, &engine, &results] {
      std::vector<std::future<RankResponse>> futures;
      futures.reserve(kSubmits);
      for (size_t m = 0; m < kSubmits; ++m) {
        futures.push_back(engine.Submit(RequestFor(t + m, "listwise")));
      }
      for (size_t m = 0; m < kSubmits; ++m) {
        results[t][m] = futures[m].get();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t m = 0; m < kSubmits; ++m) {
      const RankResponse& response = results[t][m];
      const std::vector<double>& want =
          expected[(t + m) % sessions_->size()];
      ASSERT_TRUE(response.status.ok()) << response.status;
      ASSERT_EQ(response.scores.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(response.scores[i], want[i])
            << "thread " << t << " submit " << m << " item " << i;
      }
    }
  }
  // Every submit was slate-scored exactly once (no cache shortcuts).
  EXPECT_EQ(engine.stats().slates(),
            static_cast<int64_t>(kThreads * kSubmits));
}

// ---------------------------------------------------------------------
// Slate stats: counters exact, histogram partitions the slates, rerank
// reservoir carries percentiles, MergeFrom sums into a fleet sink.
// ---------------------------------------------------------------------

TEST_F(SlateServingTest, SlateStatsCountExactlyAndMerge) {
  auto registry = MakeRegistry();
  ServingEngine engine(registry.get());

  constexpr size_t kRequests = 12;
  int64_t want_items = 0;
  for (size_t s = 0; s < kRequests; ++s) {
    RankResponse response = engine.Rank(RequestFor(s, "listwise"));
    ASSERT_TRUE(response.status.ok()) << response.status;
    want_items += ItemsOf(s);
  }
  // The pointwise route must not touch the slate counters.
  ASSERT_TRUE(engine.Rank(RequestFor(0, "aw-moe")).status.ok());

  ServingStatsSnapshot snap = engine.Stats();
  EXPECT_EQ(snap.slates, static_cast<int64_t>(kRequests));
  EXPECT_EQ(snap.slate_items, want_items);
  EXPECT_DOUBLE_EQ(snap.mean_slate_items,
                   static_cast<double>(want_items) /
                       static_cast<double>(kRequests));
  // The size histogram partitions the slates exactly.
  EXPECT_EQ(snap.slates_le10 + snap.slates_le25 + snap.slates_le50 +
                snap.slates_gt50,
            snap.slates);
  // One rerank-latency sample per slate forward.
  EXPECT_EQ(static_cast<int64_t>(snap.rerank_samples_ms.size()),
            snap.slates);
  EXPECT_GE(snap.rerank_p99_ms, snap.rerank_p50_ms);
  EXPECT_GT(snap.rerank_p50_ms, 0.0);

  // Fleet aggregation: merging twice into a sink doubles every slate
  // counter exactly.
  ServingStats sink;
  sink.MergeFrom(snap);
  sink.MergeFrom(snap);
  ServingStatsSnapshot merged = sink.Snapshot();
  EXPECT_EQ(merged.slates, 2 * snap.slates);
  EXPECT_EQ(merged.slate_items, 2 * snap.slate_items);
  EXPECT_EQ(merged.slates_le10, 2 * snap.slates_le10);
  EXPECT_EQ(merged.slates_gt50, 2 * snap.slates_gt50);
  EXPECT_DOUBLE_EQ(merged.mean_slate_items, snap.mean_slate_items);
  EXPECT_EQ(merged.rerank_samples_ms.size(),
            2 * snap.rerank_samples_ms.size());
}

// ---------------------------------------------------------------------
// The two-stage pipeline: retrieval prunes, the reranker re-scores the
// slate through the engine, and the blended ranking puts the reranked
// slate ahead of the retrieval tail.
// ---------------------------------------------------------------------

TEST_F(SlateServingTest, TwoStagePipelineBlendsRetrievalAndRerank) {
  auto registry = MakeRegistry();
  ServingEngine engine(registry.get());
  TwoStageOptions options;
  options.retrieval_model = "aw-moe";
  options.rerank_model = "listwise";
  options.top_k = 5;
  TwoStageRanker pipeline(&engine, options);

  // A session bigger than top_k, so pruning actually happens.
  size_t big = 0;
  for (size_t s = 0; s < sessions_->size(); ++s) {
    if (ItemsOf(s) > options.top_k) {
      big = s;
      break;
    }
  }
  ASSERT_GT(ItemsOf(big), options.top_k);
  const RankRequest request = RequestFor(big, "");
  TwoStageResult result = pipeline.Rank(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  const size_t n = request.items.size();
  ASSERT_EQ(result.retrieval_scores.size(), n);
  ASSERT_EQ(result.slate.size(), static_cast<size_t>(options.top_k));
  ASSERT_EQ(result.rerank_scores.size(), result.slate.size());
  ASSERT_EQ(result.final_scores.size(), n);
  ASSERT_EQ(result.ranking.size(), n);

  // The slate is the retrieval top-K in descending score order.
  for (size_t j = 1; j < result.slate.size(); ++j) {
    EXPECT_GE(result.retrieval_scores[result.slate[j - 1]],
              result.retrieval_scores[result.slate[j]]);
  }
  // Blend: slate members carry 1 + rerank (so they all outrank the
  // tail), the tail keeps its retrieval score.
  std::vector<bool> in_slate(n, false);
  for (size_t j = 0; j < result.slate.size(); ++j) {
    in_slate[result.slate[j]] = true;
    EXPECT_EQ(result.final_scores[result.slate[j]],
              1.0 + result.rerank_scores[j]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!in_slate[i]) {
      EXPECT_EQ(result.final_scores[i], result.retrieval_scores[i]);
    }
  }
  // The ranking is final_scores descending; its first top_k entries are
  // exactly the slate members.
  for (size_t j = 1; j < n; ++j) {
    EXPECT_GE(result.final_scores[result.ranking[j - 1]],
              result.final_scores[result.ranking[j]]);
  }
  for (size_t j = 0; j < result.slate.size(); ++j) {
    EXPECT_TRUE(in_slate[result.ranking[j]]) << "rank " << j;
  }

  // Stage 2 really went through the engine's slate path: the rerank
  // scores are bitwise a direct engine Rank of the slate request.
  RankRequest slate_request;
  slate_request.session_id = request.session_id;
  slate_request.model = "listwise";
  for (size_t idx : result.slate) {
    slate_request.items.push_back(request.items[idx]);
  }
  RankResponse direct = engine.Rank(slate_request);
  ASSERT_TRUE(direct.status.ok()) << direct.status;
  ASSERT_EQ(direct.scores.size(), result.rerank_scores.size());
  for (size_t j = 0; j < direct.scores.size(); ++j) {
    EXPECT_EQ(direct.scores[j], result.rerank_scores[j]) << "slate " << j;
  }
}

}  // namespace
}  // namespace awmoe
