#include "serving/ranking_service.h"

#include <gtest/gtest.h>

#include "data/jd_synthetic.h"
#include "models/dnn_ranker.h"

namespace awmoe {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 300;
    jd.num_items = 200;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 100;
    jd.test_sessions = 60;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 77;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng(5);
    AwMoeConfig config;
    config.dims.emb_dim = 4;
    config.dims.tower_mlp = {8, 6};
    config.dims.activation_unit = {6, 4};
    config.dims.gate_unit = {6, 4};
    config.dims.expert = {12, 8};
    model_ = new AwMoeRanker(data_->meta, config, &rng);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete standardizer_;
    delete model_;
    data_ = nullptr;
    standardizer_ = nullptr;
    model_ = nullptr;
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* model_;
};

JdDataset* ServingTest::data_ = nullptr;
Standardizer* ServingTest::standardizer_ = nullptr;
AwMoeRanker* ServingTest::model_ = nullptr;

TEST_F(ServingTest, GroupBySessionPartitionsExamples) {
  auto sessions = GroupBySession(data_->full_test);
  size_t total = 0;
  for (const auto& session : sessions) {
    EXPECT_FALSE(session.empty());
    for (const Example* ex : session) {
      EXPECT_EQ(ex->session_id, session[0]->session_id);
    }
    total += session.size();
  }
  EXPECT_EQ(total, data_->full_test.size());
}

TEST_F(ServingTest, RankSessionReturnsProbabilities) {
  RankingService service(model_, data_->meta, standardizer_,
                         /*share_gate=*/false);
  auto sessions = GroupBySession(data_->full_test);
  auto scores = service.RankSession(sessions[0]);
  EXPECT_EQ(scores.size(), sessions[0].size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(ServingTest, SharedGateMatchesPerItemScores) {
  // §III-F: gate sharing is exact in search mode.
  RankingService per_item(model_, data_->meta, standardizer_,
                          /*share_gate=*/false);
  RankingService shared(model_, data_->meta, standardizer_,
                        /*share_gate=*/true);
  EXPECT_FALSE(per_item.gate_sharing_active());
  EXPECT_TRUE(shared.gate_sharing_active());
  auto sessions = GroupBySession(data_->full_test);
  for (size_t s = 0; s < 5 && s < sessions.size(); ++s) {
    auto a = per_item.RankSession(sessions[s]);
    auto b = shared.RankSession(sessions[s]);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-5);
    }
  }
}

TEST_F(ServingTest, StatsAccumulate) {
  RankingService service(model_, data_->meta, standardizer_,
                         /*share_gate=*/true);
  auto sessions = GroupBySession(data_->full_test);
  service.RankSession(sessions[0]);
  service.RankSession(sessions[1]);
  EXPECT_EQ(service.stats().sessions, 2);
  EXPECT_EQ(service.stats().items,
            static_cast<int64_t>(sessions[0].size() + sessions[1].size()));
  EXPECT_GT(service.stats().total_ms, 0.0);
  service.ResetStats();
  EXPECT_EQ(service.stats().sessions, 0);
}

TEST_F(ServingTest, GateSharingDisabledInRecommendationMode) {
  DatasetMeta rec_meta = data_->meta;
  rec_meta.recommendation_mode = true;
  RankingService service(model_, rec_meta, standardizer_,
                         /*share_gate=*/true);
  EXPECT_FALSE(service.gate_sharing_active())
      << "rec mode gate depends on the target item; sharing must disable";
}

TEST_F(ServingTest, GateSharingRequiresAwMoe) {
  Rng rng(9);
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  DnnRanker dnn(data_->meta, dims, &rng);
  RankingService service(&dnn, data_->meta, standardizer_,
                         /*share_gate=*/true);
  EXPECT_FALSE(service.gate_sharing_active());
  // Still serves correctly via the fallback path.
  auto sessions = GroupBySession(data_->full_test);
  EXPECT_EQ(service.RankSession(sessions[0]).size(), sessions[0].size());
}

TEST_F(ServingTest, AbTestIsPairedAndDeterministic) {
  RankingService control(model_, data_->meta, standardizer_, false);
  RankingService treatment(model_, data_->meta, standardizer_, true);
  auto sessions = GroupBySession(data_->full_test);
  AbTestResult r1 = RunAbTest(&control, &treatment, sessions, 42);
  AbTestResult r2 = RunAbTest(&control, &treatment, sessions, 42);
  EXPECT_EQ(r1.control.uctr, r2.control.uctr);
  EXPECT_EQ(r1.treatment.ucvr, r2.treatment.ucvr);
  // Same model in both arms -> identical outcomes, lift 0, p = 1.
  EXPECT_DOUBLE_EQ(r1.uctr_lift_percent, 0.0);
  EXPECT_DOUBLE_EQ(r1.ucvr_lift_percent, 0.0);
  EXPECT_DOUBLE_EQ(r1.uctr_p_value, 1.0);
}

TEST_F(ServingTest, AbTestDetectsBetterRanker) {
  // Oracle arm (ranks by ground-truth utility) must beat a reversed
  // oracle on both UCTR and UCVR. Build tiny fake services via labels:
  // instead, compare AW-MoE against itself with inverted scores by
  // running the user model directly on hand-built rankings.
  auto sessions = GroupBySession(data_->full_test);

  // Construct per-session outcome differences using the cascade model by
  // putting the positive first (good arm) vs last (bad arm) through the
  // RunAbTest plumbing: emulate with two RankingServices is not possible
  // without a model, so verify monotonicity via the public AbTest on the
  // trained model vs an untrained one.
  Rng rng(12);
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  AwMoeRanker untrained(data_->meta, config, &rng);
  RankingService control(&untrained, data_->meta, standardizer_, false);
  RankingService treatment(model_, data_->meta, standardizer_, false);
  AbTestResult result = RunAbTest(&control, &treatment, sessions, 7);
  // Both arms see identical user randomness; outcomes must be in [0,1].
  EXPECT_GE(result.control.uctr, 0.0);
  EXPECT_LE(result.control.uctr, 1.0);
  EXPECT_EQ(result.control.session_clicked.size(), sessions.size());
}

}  // namespace
}  // namespace awmoe
