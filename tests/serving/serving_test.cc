#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "serving/ab_test.h"
#include "serving/model_pool.h"
#include "serving/ranking_service.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"

namespace awmoe {
namespace {

// These tests compare engine scores against the legacy Var-graph
// RankingService bitwise, which only holds on the reference kernel
// tier (the fast tier is epsilon-bounded; see kernel_tier_test.cc).
const bool kPinnedReferenceTier = [] {
  SetKernelTier(KernelTier::kReference);
  return true;
}();

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 300;
    jd.num_items = 200;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 100;
    jd.test_sessions = 60;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 77;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng(5);
    model_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng);
    Rng rng2(12);
    second_model_ =
        new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng2);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete standardizer_;
    delete model_;
    delete second_model_;
    data_ = nullptr;
    standardizer_ = nullptr;
    model_ = nullptr;
    second_model_ = nullptr;
  }

  /// Fresh single-model pool over the shared fixture data (unique_ptr:
  /// the pool holds per-lane mutexes, so it is neither copyable nor
  /// movable).
  static std::unique_ptr<ModelPool> MakeRegistry() {
    auto pool = std::make_unique<ModelPool>(data_->meta, standardizer_);
    pool->Register("aw-moe", model_);
    return pool;
  }

  /// Copies a session with one extra behaviour appended to every item —
  /// the "user clicked between pagination requests" gate context.
  static std::vector<Example> MakeGrownSession(
      const std::vector<const Example*>& session) {
    std::vector<Example> grown;
    grown.reserve(session.size());
    for (const Example* ex : session) {
      Example copy = *ex;
      copy.behavior_items.push_back(1);
      copy.behavior_cats.push_back(1);
      copy.behavior_brands.push_back(1);
      if (!copy.behavior_attrs.empty()) {
        copy.behavior_attrs.insert(copy.behavior_attrs.end(),
                                   Example::kItemAttrs, 0.0f);
      }
      grown.push_back(std::move(copy));
    }
    return grown;
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* model_;
  static AwMoeRanker* second_model_;
};

JdDataset* ServingTest::data_ = nullptr;
Standardizer* ServingTest::standardizer_ = nullptr;
AwMoeRanker* ServingTest::model_ = nullptr;
AwMoeRanker* ServingTest::second_model_ = nullptr;

// ---------------------------------------------------------------------
// GroupBySession.
// ---------------------------------------------------------------------

TEST_F(ServingTest, GroupBySessionPartitionsExamples) {
  auto sessions = GroupBySession(data_->full_test);
  size_t total = 0;
  for (const auto& session : sessions) {
    EXPECT_FALSE(session.empty());
    for (const Example* ex : session) {
      EXPECT_EQ(ex->session_id, session[0]->session_id);
    }
    total += session.size();
  }
  EXPECT_EQ(total, data_->full_test.size());
}

TEST_F(ServingTest, GroupBySessionEmptySplit) {
  std::vector<Example> empty;
  EXPECT_TRUE(GroupBySession(empty).empty());
}

TEST_F(ServingTest, GroupBySessionSingleSession) {
  std::vector<Example> examples(4);
  for (size_t i = 0; i < examples.size(); ++i) {
    examples[i].session_id = 9;
    examples[i].target_item = static_cast<int64_t>(i + 1);
  }
  auto sessions = GroupBySession(examples);
  ASSERT_EQ(sessions.size(), 1u);
  ASSERT_EQ(sessions[0].size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sessions[0][i]->target_item, static_cast<int64_t>(i + 1));
  }
}

TEST_F(ServingTest, GroupBySessionInterleavedPreservesWithinSessionOrder) {
  // Sessions 2, 1, 3 interleaved; target_item encodes arrival order.
  std::vector<Example> examples(6);
  const int64_t ids[] = {2, 1, 2, 1, 3, 2};
  for (size_t i = 0; i < examples.size(); ++i) {
    examples[i].session_id = ids[i];
    examples[i].target_item = static_cast<int64_t>(i);
  }
  auto sessions = GroupBySession(examples);
  ASSERT_EQ(sessions.size(), 3u);
  // Ascending session id.
  EXPECT_EQ(sessions[0][0]->session_id, 1);
  EXPECT_EQ(sessions[1][0]->session_id, 2);
  EXPECT_EQ(sessions[2][0]->session_id, 3);
  // Within-session arrival order preserved.
  ASSERT_EQ(sessions[0].size(), 2u);
  EXPECT_EQ(sessions[0][0]->target_item, 1);
  EXPECT_EQ(sessions[0][1]->target_item, 3);
  ASSERT_EQ(sessions[1].size(), 3u);
  EXPECT_EQ(sessions[1][0]->target_item, 0);
  EXPECT_EQ(sessions[1][1]->target_item, 2);
  EXPECT_EQ(sessions[1][2]->target_item, 5);
  ASSERT_EQ(sessions[2].size(), 1u);
  EXPECT_EQ(sessions[2][0]->target_item, 4);
}

// ---------------------------------------------------------------------
// Engine vs legacy RankingService: the regression anchor. The engine
// must reproduce the pre-redesign scores bit for bit.
// ---------------------------------------------------------------------

TEST_F(ServingTest, EngineMatchesLegacyServiceBitwisePerItemGate) {
  RankingService legacy(model_, data_->meta, standardizer_,
                        /*share_gate=*/false);
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.share_gate = false;
  ServingEngine engine(&registry, options);

  auto sessions = GroupBySession(data_->full_test);
  for (const auto& session : sessions) {
    std::vector<double> expected = legacy.RankSession(session);
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    RankResponse response = engine.Rank(request);
    EXPECT_FALSE(response.gate_shared);
    ASSERT_EQ(response.scores.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(response.scores[i], expected[i]) << "item " << i;
    }
  }
}

TEST_F(ServingTest, EngineMatchesLegacyServiceBitwiseSharedGate) {
  RankingService legacy(model_, data_->meta, standardizer_,
                        /*share_gate=*/true);
  ASSERT_TRUE(legacy.gate_sharing_active());
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  ASSERT_TRUE(engine.GateSharingActive());

  auto sessions = GroupBySession(data_->full_test);
  for (const auto& session : sessions) {
    std::vector<double> expected = legacy.RankSession(session);
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    RankResponse response = engine.Rank(request);
    EXPECT_TRUE(response.gate_shared);
    ASSERT_EQ(response.scores.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(response.scores[i], expected[i]) << "item " << i;
    }
  }
}

// §III-F is exact, not approximate: sharing the gate must not change a
// single bit of any score.
TEST_F(ServingTest, SharedGateBitwiseIdenticalToPerItemGate) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  // Score caching off: both engines share one pool (one snapshot, one
  // score cache), and this test must compare two real forward paths,
  // not a cached replay of the first engine's scores.
  ServingEngineOptions per_item_options;
  per_item_options.share_gate = false;
  per_item_options.score_cache_capacity = 0;
  ServingEngine per_item(&registry, per_item_options);
  ServingEngineOptions shared_options;
  shared_options.score_cache_capacity = 0;
  ServingEngine shared(&registry, shared_options);

  auto requests = MakeSessionRequests(GroupBySession(data_->full_test));
  auto a = per_item.RankBatch(requests);
  auto b = shared.RankBatch(requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_FALSE(a[s].gate_shared);
    EXPECT_TRUE(b[s].gate_shared);
    ASSERT_EQ(a[s].scores.size(), b[s].scores.size());
    for (size_t i = 0; i < a[s].scores.size(); ++i) {
      EXPECT_EQ(a[s].scores[i], b[s].scores[i])
          << "session " << a[s].session_id << " item " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Micro-batching and threading invariance.
// ---------------------------------------------------------------------

TEST_F(ServingTest, MicroBatchingDoesNotChangeScores) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  auto requests = MakeSessionRequests(GroupBySession(data_->full_test));

  ServingEngineOptions one_by_one;
  one_by_one.max_batch_items = 1;  // Every session alone (never split).
  ServingEngine baseline(&registry, one_by_one);
  auto expected = baseline.RankBatch(requests);

  for (int64_t cap : {64, 1024}) {
    ServingEngineOptions options;
    options.max_batch_items = cap;
    ServingEngine engine(&registry, options);
    auto responses = engine.RankBatch(requests);
    ASSERT_EQ(responses.size(), expected.size());
    for (size_t s = 0; s < responses.size(); ++s) {
      ASSERT_EQ(responses[s].scores.size(), expected[s].scores.size());
      for (size_t i = 0; i < responses[s].scores.size(); ++i) {
        EXPECT_EQ(responses[s].scores[i], expected[s].scores[i])
            << "cap " << cap << " session " << s << " item " << i;
      }
    }
  }
}

TEST_F(ServingTest, WorkerPoolDoesNotChangeScores) {
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("a", model_);
  registry.Register("b", second_model_);

  auto sessions = GroupBySession(data_->full_test);
  std::vector<RankRequest> requests;
  for (size_t s = 0; s < sessions.size(); ++s) {
    RankRequest request;
    request.session_id = sessions[s][0]->session_id;
    request.model = (s % 2 == 0) ? "a" : "b";
    request.items = sessions[s];
    requests.push_back(std::move(request));
  }

  ServingEngineOptions serial_options;
  serial_options.max_batch_items = 32;
  ServingEngine serial(&registry, serial_options);
  auto expected = serial.RankBatch(requests);

  ServingEngineOptions pooled_options = serial_options;
  pooled_options.num_threads = 4;
  ServingEngine pooled(&registry, pooled_options);
  auto responses = pooled.RankBatch(requests);

  ASSERT_EQ(responses.size(), expected.size());
  for (size_t s = 0; s < responses.size(); ++s) {
    EXPECT_EQ(responses[s].model, expected[s].model);
    ASSERT_EQ(responses[s].scores.size(), expected[s].scores.size());
    for (size_t i = 0; i < responses[s].scores.size(); ++i) {
      EXPECT_EQ(responses[s].scores[i], expected[s].scores[i]);
    }
  }
}

// ---------------------------------------------------------------------
// Gate cache.
// ---------------------------------------------------------------------

TEST_F(ServingTest, GateCacheHitsOnRepeatSessionWithIdenticalScores) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  // Level-1 caching off: a repeat request must reach the GATE cache
  // (with scores cached it would short-circuit before the gate lookup).
  ServingEngineOptions options;
  options.score_cache_capacity = 0;
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];

  RankResponse first = engine.Rank(request);
  EXPECT_TRUE(first.gate_shared);
  EXPECT_FALSE(first.gate_cache_hit);
  RankResponse second = engine.Rank(request);
  EXPECT_TRUE(second.gate_cache_hit);
  ASSERT_EQ(second.scores.size(), first.scores.size());
  for (size_t i = 0; i < first.scores.size(); ++i) {
    EXPECT_EQ(second.scores[i], first.scores[i]);
  }
}

TEST_F(ServingTest, GateCacheInvalidatesOnChangedSessionContext) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.score_cache_capacity = 0;  // Repeats must reach the gate cache.
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  EXPECT_FALSE(engine.Rank(request).gate_cache_hit);
  EXPECT_TRUE(engine.Rank(request).gate_cache_hit);

  // Same session id, but the user's behaviour sequence grew in the
  // meantime: the cached gate is stale and must be re-probed.
  std::vector<Example> grown = MakeGrownSession(sessions[0]);
  RankRequest grown_request;
  grown_request.session_id = request.session_id;
  for (const Example& ex : grown) grown_request.items.push_back(&ex);
  RankResponse stale_check = engine.Rank(grown_request);
  EXPECT_FALSE(stale_check.gate_cache_hit);

  // The fresh gate must match an engine that never saw the old context.
  auto clean_registry_owner = MakeRegistry();
  ModelPool& clean_registry = *clean_registry_owner;
  ServingEngine clean_engine(&clean_registry);
  RankResponse expected = clean_engine.Rank(grown_request);
  ASSERT_EQ(stale_check.scores.size(), expected.scores.size());
  for (size_t i = 0; i < expected.scores.size(); ++i) {
    EXPECT_EQ(stale_check.scores[i], expected.scores[i]);
  }
}

TEST_F(ServingTest, SameSessionDifferentContextInOneBatchGetOwnGates) {
  // Two requests with the same session id but different gate inputs
  // inside ONE RankBatch must each be probed — the first request's
  // gate must not leak to the second.
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);

  std::vector<Example> grown = MakeGrownSession(sessions[0]);
  RankRequest original;
  original.session_id = sessions[0][0]->session_id;
  original.items = sessions[0];
  RankRequest changed;
  changed.session_id = original.session_id;
  for (const Example& ex : grown) changed.items.push_back(&ex);

  auto responses = engine.RankBatch({original, changed});

  auto clean_registry_owner = MakeRegistry();
  ModelPool& clean_registry = *clean_registry_owner;
  ServingEngine clean_engine(&clean_registry);
  RankResponse expected_changed = clean_engine.Rank(changed);
  ASSERT_EQ(responses[1].scores.size(), expected_changed.scores.size());
  for (size_t i = 0; i < expected_changed.scores.size(); ++i) {
    EXPECT_EQ(responses[1].scores[i], expected_changed.scores[i])
        << "item " << i;
  }
}

TEST_F(ServingTest, GateCacheEvictsLeastRecentlyUsed) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.gate_cache_capacity = 2;
  options.score_cache_capacity = 0;  // Repeats must reach the gate cache.
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  auto rank = [&](size_t s) {
    RankRequest request;
    request.session_id = sessions[s][0]->session_id;
    request.items = sessions[s];
    return engine.Rank(request);
  };
  EXPECT_FALSE(rank(0).gate_cache_hit);
  EXPECT_FALSE(rank(1).gate_cache_hit);
  EXPECT_TRUE(rank(0).gate_cache_hit);   // 0 refreshed; LRU order {0, 1}.
  EXPECT_FALSE(rank(2).gate_cache_hit);  // Evicts 1.
  EXPECT_FALSE(rank(1).gate_cache_hit);  // 1 was evicted; evicts 0.
  EXPECT_TRUE(rank(2).gate_cache_hit);
}

TEST_F(ServingTest, GateCacheDisabledStillSharesWithinRequest) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.gate_cache_capacity = 0;
  options.score_cache_capacity = 0;  // Repeats must re-run the forward.
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  RankResponse first = engine.Rank(request);
  RankResponse second = engine.Rank(request);
  EXPECT_TRUE(first.gate_shared);
  EXPECT_TRUE(second.gate_shared);
  EXPECT_FALSE(second.gate_cache_hit);
  for (size_t i = 0; i < first.scores.size(); ++i) {
    EXPECT_EQ(second.scores[i], first.scores[i]);
  }
}

TEST_F(ServingTest, GateCacheCountersTrackHitsAndMisses) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.score_cache_capacity = 0;  // Repeats must reach the gate cache.
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];

  engine.Rank(request);  // Cold: one miss.
  EXPECT_EQ(engine.stats().gate_cache_hits(), 0);
  EXPECT_EQ(engine.stats().gate_cache_misses(), 1);
  engine.Rank(request);  // Repeat: one hit.
  EXPECT_EQ(engine.stats().gate_cache_hits(), 1);
  EXPECT_EQ(engine.stats().gate_cache_misses(), 1);

  // Same session id, changed gate context: the invalidation re-probe
  // counts as a miss, not a hit.
  std::vector<Example> grown = MakeGrownSession(sessions[0]);
  RankRequest grown_request;
  grown_request.session_id = request.session_id;
  for (const Example& ex : grown) grown_request.items.push_back(&ex);
  engine.Rank(grown_request);
  EXPECT_EQ(engine.stats().gate_cache_hits(), 1);
  EXPECT_EQ(engine.stats().gate_cache_misses(), 2);

  ServingStatsSnapshot snap = engine.Stats();
  EXPECT_EQ(snap.gate_cache_hits, 1);
  EXPECT_EQ(snap.gate_cache_misses, 2);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().gate_cache_hits(), 0);
  EXPECT_EQ(engine.stats().gate_cache_misses(), 0);
}

TEST_F(ServingTest, GateCacheEvictionShowsUpInMissCounters) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.gate_cache_capacity = 2;
  options.score_cache_capacity = 0;  // Repeats must reach the gate cache.
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  auto rank = [&](size_t s) {
    RankRequest request;
    request.session_id = sessions[s][0]->session_id;
    request.items = sessions[s];
    return engine.Rank(request);
  };
  rank(0);  // miss (cold)
  rank(1);  // miss (cold)
  rank(0);  // hit; LRU order {0, 1}
  rank(2);  // miss (cold), evicts 1
  rank(1);  // miss (evicted), evicts 0
  rank(2);  // hit
  EXPECT_EQ(engine.stats().gate_cache_hits(), 2);
  EXPECT_EQ(engine.stats().gate_cache_misses(), 4);
}

TEST_F(ServingTest, GateCacheDisabledCountsEveryLookupAsMiss) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.gate_cache_capacity = 0;
  options.score_cache_capacity = 0;  // Repeats must re-run the forward.
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  engine.Rank(request);
  engine.Rank(request);
  EXPECT_EQ(engine.stats().gate_cache_hits(), 0);
  EXPECT_EQ(engine.stats().gate_cache_misses(), 2);
}

// ---------------------------------------------------------------------
// Gate-sharing preconditions.
// ---------------------------------------------------------------------

TEST_F(ServingTest, GateSharingDisabledInRecommendationMode) {
  DatasetMeta rec_meta = data_->meta;
  rec_meta.recommendation_mode = true;
  Rng rng(5);
  AwMoeRanker rec_model(rec_meta, SmallAwMoeConfig(), &rng);
  ModelPool registry(rec_meta, standardizer_);
  registry.Register("aw-moe", &rec_model);
  ServingEngine engine(&registry);
  EXPECT_FALSE(engine.GateSharingActive())
      << "rec mode gate depends on the target item; sharing must disable";
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  RankResponse response = engine.Rank(request);
  EXPECT_FALSE(response.gate_shared);
  EXPECT_EQ(response.scores.size(), sessions[0].size());
}

TEST_F(ServingTest, GateSharingRequiresShareableGate) {
  Rng rng(9);
  ModelDims dims = SmallAwMoeConfig().dims;
  DnnRanker dnn(data_->meta, dims, &rng);
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("dnn", &dnn);
  ServingEngine engine(&registry);
  EXPECT_FALSE(engine.GateSharingActive());
  // Still serves correctly via the fallback path.
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  RankResponse response = engine.Rank(request);
  EXPECT_EQ(response.scores.size(), sessions[0].size());
  for (double s : response.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// Gate sharing is model-agnostic since the ScoreInto redesign: any
// ranker declaring SupportsSessionGateReuse + a gate width serves the
// §III-F path — Category-MoE's query-category gate qualifies in search
// mode, with scores bitwise-unchanged and repeat requests hitting the
// snapshot's gate cache. (The old engine hard-downcast to AwMoeRanker
// and could not do this.)
TEST_F(ServingTest, CategoryMoeServesSharedGateThroughGenericApi) {
  Rng rng(23);
  CategoryMoeRanker cat_moe(data_->meta, SmallAwMoeConfig().dims, &rng);
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("cat-moe", &cat_moe);

  // Score caching off on both engines: they share one pool snapshot,
  // and the comparison needs two real forwards, not a cached replay.
  ServingEngineOptions shared_options;
  shared_options.score_cache_capacity = 0;
  ServingEngine shared(&registry, shared_options);
  ASSERT_TRUE(shared.GateSharingActive());
  ServingEngineOptions per_item_options;
  per_item_options.share_gate = false;
  per_item_options.score_cache_capacity = 0;
  ServingEngine per_item(&registry, per_item_options);

  auto requests = MakeSessionRequests(GroupBySession(data_->full_test));
  auto a = per_item.RankBatch(requests);
  auto b = shared.RankBatch(requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_FALSE(a[s].gate_shared);
    EXPECT_TRUE(b[s].gate_shared);
    ASSERT_EQ(a[s].scores.size(), b[s].scores.size());
    for (size_t i = 0; i < a[s].scores.size(); ++i) {
      EXPECT_EQ(a[s].scores[i], b[s].scores[i])
          << "session " << a[s].session_id << " item " << i;
    }
  }
  // Repeat request: the cached row serves without re-running the gate.
  EXPECT_TRUE(shared.Rank(requests[0]).gate_cache_hit);
}

// ---------------------------------------------------------------------
// Gate-cache warm-up (ModelPool::WarmSessionGates).
// ---------------------------------------------------------------------

TEST_F(ServingTest, WarmSessionGatesMakesFirstRequestAHit) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);

  const int64_t warmed =
      registry.WarmSessionGates("aw-moe", RolloutArm::kStable, sessions,
                                engine.options().gate_cache_capacity);
  EXPECT_EQ(warmed, static_cast<int64_t>(sessions.size()));

  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  RankResponse warm = engine.Rank(request);
  EXPECT_TRUE(warm.gate_shared);
  EXPECT_TRUE(warm.gate_cache_hit)
      << "a warmed session's FIRST request must skip the gate probe";

  // Warmed rows come from the same GateInto path a cold probe takes, so
  // scores must equal a never-warmed engine's bitwise.
  auto cold_owner = MakeRegistry();
  ServingEngine cold_engine(&*cold_owner);
  RankResponse cold = cold_engine.Rank(request);
  ASSERT_EQ(warm.scores.size(), cold.scores.size());
  for (size_t i = 0; i < cold.scores.size(); ++i) {
    EXPECT_EQ(warm.scores[i], cold.scores[i]) << "item " << i;
  }
}

TEST_F(ServingTest, WarmSessionGatesOnStagedCandidateOnly) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);

  // Nothing staged yet: warming the candidate arm is a no-op.
  EXPECT_EQ(registry.WarmSessionGates("aw-moe", RolloutArm::kCandidate,
                                      sessions, 4096),
            0);

  registry.StageCandidate("aw-moe", model_->Clone());
  const int64_t warmed = registry.WarmSessionGates(
      "aw-moe", RolloutArm::kCandidate, sessions, 4096);
  EXPECT_EQ(warmed, static_cast<int64_t>(sessions.size()));

  // The candidate snapshot starts gate-warm BEFORE taking traffic...
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  request.arm_policy = ArmPolicy::kForceCandidate;
  RankResponse candidate = engine.Rank(request);
  EXPECT_EQ(candidate.arm, RolloutArm::kCandidate);
  EXPECT_TRUE(candidate.gate_cache_hit);

  // ...while the stable snapshot's cache was not touched.
  request.arm_policy = ArmPolicy::kForceStable;
  EXPECT_FALSE(engine.Rank(request).gate_cache_hit);
  registry.DropCandidate("aw-moe");
}

TEST_F(ServingTest, WarmSessionGatesWithoutShareableGateReturnsZero) {
  Rng rng(9);
  DnnRanker dnn(data_->meta, SmallAwMoeConfig().dims, &rng);
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("dnn", &dnn);
  auto sessions = GroupBySession(data_->full_test);
  EXPECT_EQ(
      registry.WarmSessionGates("dnn", RolloutArm::kStable, sessions, 4096),
      0);
}

// ---------------------------------------------------------------------
// Level-1 session score cache and level-2 session feature store.
// ---------------------------------------------------------------------

TEST_F(ServingTest, ScoreCacheHitServesBitwiseEqualScoresWithoutLane) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];

  RankResponse first = engine.Rank(request);
  EXPECT_FALSE(first.score_cache_hit);
  EXPECT_GE(first.replica, 0);
  RankResponse second = engine.Rank(request);
  EXPECT_TRUE(second.score_cache_hit);
  EXPECT_EQ(second.replica, -1);  // No lane was leased.
  EXPECT_EQ(second.model_version, first.model_version);
  ASSERT_EQ(second.scores.size(), first.scores.size());
  for (size_t i = 0; i < first.scores.size(); ++i) {
    EXPECT_EQ(second.scores[i], first.scores[i]) << "item " << i;
  }

  // Cached scores must be bitwise-equal to a full recompute on an
  // engine that has never cached anything.
  auto clean_owner = MakeRegistry();
  ServingEngineOptions cold;
  cold.score_cache_capacity = 0;
  ServingEngine clean(&*clean_owner, cold);
  RankResponse recompute = clean.Rank(request);
  for (size_t i = 0; i < recompute.scores.size(); ++i) {
    EXPECT_EQ(second.scores[i], recompute.scores[i]) << "item " << i;
  }
}

TEST_F(ServingTest, ScoreCacheHitIsCandidateOrderInsensitive) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  // Pick a session with at least 2 candidates.
  size_t s = 0;
  while (s < sessions.size() && sessions[s].size() < 2) ++s;
  ASSERT_LT(s, sessions.size());
  RankRequest request;
  request.session_id = sessions[s][0]->session_id;
  request.items = sessions[s];
  RankResponse first = engine.Rank(request);
  EXPECT_FALSE(first.score_cache_hit);

  // Same candidate set, reversed order: still a hit, and every item
  // gets ITS score (matched per candidate hash, not by position).
  RankRequest reversed = request;
  std::reverse(reversed.items.begin(), reversed.items.end());
  RankResponse second = engine.Rank(reversed);
  EXPECT_TRUE(second.score_cache_hit);
  ASSERT_EQ(second.scores.size(), first.scores.size());
  const size_t n = first.scores.size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(second.scores[i], first.scores[n - 1 - i]) << "item " << i;
  }
}

TEST_F(ServingTest, ScoreCacheInvalidatesOnHistoryChange) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  EXPECT_FALSE(engine.Rank(request).score_cache_hit);
  EXPECT_TRUE(engine.Rank(request).score_cache_hit);
  EXPECT_EQ(engine.stats().score_cache_invalidations(), 0);

  // The user clicked between requests: same items, grown history. The
  // cached scores are stale and a real forward must run.
  std::vector<Example> grown = MakeGrownSession(sessions[0]);
  RankRequest grown_request;
  grown_request.session_id = request.session_id;
  for (const Example& ex : grown) grown_request.items.push_back(&ex);
  RankResponse fresh = engine.Rank(grown_request);
  EXPECT_FALSE(fresh.score_cache_hit);
  EXPECT_GE(fresh.replica, 0);
  EXPECT_EQ(engine.stats().score_cache_invalidations(), 1);

  // The recomputed scores match an engine that never saw the old state.
  auto clean_owner = MakeRegistry();
  ServingEngine clean(&*clean_owner);
  RankResponse expected = clean.Rank(grown_request);
  ASSERT_EQ(fresh.scores.size(), expected.scores.size());
  for (size_t i = 0; i < expected.scores.size(); ++i) {
    EXPECT_EQ(fresh.scores[i], expected.scores[i]) << "item " << i;
  }

  // And the old (pre-click) request no longer hits either: the whole
  // session was invalidated, not just the new key.
  EXPECT_FALSE(engine.Rank(request).score_cache_hit);
}

TEST_F(ServingTest, ScoreCacheColdAfterHotSwap) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  EXPECT_FALSE(engine.Rank(request).score_cache_hit);
  EXPECT_TRUE(engine.Rank(request).score_cache_hit);

  // Publish a new version (identical weights — the point is the cache
  // scoping, not the scores): the new snapshot starts cache-cold.
  const int64_t v2 = registry.UpdateModel("aw-moe", model_->Clone());
  RankResponse after = engine.Rank(request);
  EXPECT_FALSE(after.score_cache_hit);
  EXPECT_EQ(after.model_version, v2);
  // The repeat on the new snapshot caches again.
  EXPECT_TRUE(engine.Rank(request).score_cache_hit);
}

TEST_F(ServingTest, ScoreCacheCountersAndGaugesTrack) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];

  engine.Rank(request);  // Cold: one miss.
  EXPECT_EQ(engine.stats().score_cache_hits(), 0);
  EXPECT_EQ(engine.stats().score_cache_misses(), 1);
  engine.Rank(request);  // Repeat: one hit.
  EXPECT_EQ(engine.stats().score_cache_hits(), 1);
  EXPECT_EQ(engine.stats().score_cache_misses(), 1);

  ServingStatsSnapshot snap = engine.Stats();
  EXPECT_EQ(snap.score_cache_hits, 1);
  EXPECT_EQ(snap.score_cache_misses, 1);
  // Live occupancy gauges from the pool: one score entry, one gate row,
  // one encoding row resident, all with non-zero byte estimates.
  EXPECT_EQ(snap.score_cache_entries, 1);
  EXPECT_GT(snap.score_cache_bytes, 0);
  EXPECT_EQ(snap.encoding_cache_entries, 1);
  EXPECT_GT(snap.encoding_cache_bytes, 0);
  EXPECT_EQ(snap.gate_cache_entries, 1);
  EXPECT_GT(snap.gate_cache_bytes, 0);
  // Split latency reservoirs: one sample each.
  EXPECT_EQ(static_cast<int64_t>(snap.score_hit_samples_ms.size()), 1);
  EXPECT_EQ(static_cast<int64_t>(snap.score_miss_samples_ms.size()), 1);
  EXPECT_GT(snap.score_miss_p99_ms, 0.0);

  // A hot swap retires the old snapshot's caches: gauges drop to zero.
  registry.UpdateModel("aw-moe", model_->Clone());
  ServingStatsSnapshot after = engine.Stats();
  EXPECT_EQ(after.score_cache_entries, 0);
  EXPECT_EQ(after.score_cache_bytes, 0);
}

TEST_F(ServingTest, ScoreCacheDisabledNeverHits) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.score_cache_capacity = 0;
  ServingEngine engine(&registry, options);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  engine.Rank(request);
  RankResponse second = engine.Rank(request);
  EXPECT_FALSE(second.score_cache_hit);
  EXPECT_GE(second.replica, 0);
  EXPECT_EQ(engine.stats().score_cache_hits(), 0);
  EXPECT_EQ(engine.stats().score_cache_misses(), 0);  // No lookups at all.
}

TEST_F(ServingTest, EncodingCacheHitsOnNewCandidatesSameSession) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  // Page 1: session 0's own candidates. Page 2: same session context,
  // DIFFERENT candidates (borrowed items re-stamped with session 0's
  // user/query/history) — a score-cache miss by construction, but the
  // session encoding and gate row are reusable.
  RankRequest page1;
  page1.session_id = sessions[0][0]->session_id;
  page1.items = sessions[0];
  std::vector<Example> page2_items;
  for (const Example* ex : sessions[1]) {
    Example copy = *ex;
    const Example& ctx = *sessions[0][0];
    copy.session_id = ctx.session_id;
    copy.user_id = ctx.user_id;
    copy.age_segment = ctx.age_segment;
    copy.query_id = ctx.query_id;
    copy.query_cat = ctx.query_cat;
    copy.behavior_items = ctx.behavior_items;
    copy.behavior_cats = ctx.behavior_cats;
    copy.behavior_brands = ctx.behavior_brands;
    copy.behavior_attrs = ctx.behavior_attrs;
    page2_items.push_back(std::move(copy));
  }
  RankRequest page2;
  page2.session_id = page1.session_id;
  for (const Example& ex : page2_items) page2.items.push_back(&ex);

  RankResponse first = engine.Rank(page1);
  EXPECT_FALSE(first.encoding_cache_hit);
  RankResponse second = engine.Rank(page2);
  EXPECT_FALSE(second.score_cache_hit);  // New candidates.
  EXPECT_TRUE(second.encoding_cache_hit);
  EXPECT_TRUE(second.gate_cache_hit);
  EXPECT_EQ(engine.stats().encoding_cache_hits(), 1);

  // The encoding-replay scores are bitwise-equal to a cold engine's.
  auto clean_owner = MakeRegistry();
  ServingEngine clean(&*clean_owner);
  RankResponse expected = clean.Rank(page2);
  ASSERT_EQ(second.scores.size(), expected.scores.size());
  for (size_t i = 0; i < expected.scores.size(); ++i) {
    EXPECT_EQ(second.scores[i], expected.scores[i]) << "item " << i;
  }
}

TEST_F(ServingTest, EncodingPathBitwiseIdenticalToDisabled) {
  // The level-2 split path (EncodeSessionInto + ScoreWithSessionInto)
  // on the full test traffic must reproduce the plain fused engine
  // bitwise — cache hits, probes and replication included.
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions split_options;
  split_options.score_cache_capacity = 0;  // Force every forward to run.
  ServingEngine split_engine(&registry, split_options);

  auto fused_owner = MakeRegistry();
  ServingEngineOptions fused_options;
  fused_options.score_cache_capacity = 0;
  fused_options.share_session_encoding = false;
  ServingEngine fused_engine(&*fused_owner, fused_options);

  auto requests = MakeSessionRequests(GroupBySession(data_->full_test));
  auto a = split_engine.RankBatch(requests);
  auto b = fused_engine.RankBatch(requests);
  // Run the same traffic twice so cross-request encoding hits serve.
  auto a2 = split_engine.RankBatch(requests);
  ASSERT_EQ(a.size(), b.size());
  int64_t encoding_hits = 0;
  for (size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].scores.size(), b[s].scores.size());
    for (size_t i = 0; i < a[s].scores.size(); ++i) {
      EXPECT_EQ(a[s].scores[i], b[s].scores[i])
          << "cold session " << a[s].session_id << " item " << i;
      EXPECT_EQ(a2[s].scores[i], b[s].scores[i])
          << "warm session " << a[s].session_id << " item " << i;
    }
    if (a2[s].encoding_cache_hit) ++encoding_hits;
  }
  EXPECT_GT(encoding_hits, 0);
}

TEST_F(ServingTest, EncodingDisabledStillScoresIdentically) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.score_cache_capacity = 0;
  options.encoding_cache_capacity = 0;  // Within-request sharing only.
  ServingEngine engine(&registry, options);

  auto fused_owner = MakeRegistry();
  ServingEngineOptions fused_options;
  fused_options.score_cache_capacity = 0;
  fused_options.share_session_encoding = false;
  ServingEngine fused(&*fused_owner, fused_options);

  auto requests = MakeSessionRequests(GroupBySession(data_->full_test));
  auto a = engine.RankBatch(requests);
  auto b = fused.RankBatch(requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_FALSE(a[s].encoding_cache_hit);
    for (size_t i = 0; i < a[s].scores.size(); ++i) {
      EXPECT_EQ(a[s].scores[i], b[s].scores[i]) << "item " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Registry and routing.
// ---------------------------------------------------------------------

TEST_F(ServingTest, RegistryRoutesNamedAndDefaultModels) {
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("control", model_);
  registry.Register("treatment", second_model_);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.default_model(), "control");
  EXPECT_EQ(registry.Resolve(""), model_);
  EXPECT_EQ(registry.Resolve("treatment"), second_model_);
  EXPECT_EQ(registry.Find("missing"), nullptr);
  registry.SetDefault("treatment");
  EXPECT_EQ(registry.Resolve(""), second_model_);

  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  RankRequest request;
  request.session_id = sessions[0][0]->session_id;
  request.items = sessions[0];
  EXPECT_EQ(engine.Rank(request).model, "treatment");
  request.model = "control";
  EXPECT_EQ(engine.Rank(request).model, "control");
}

TEST_F(ServingTest, TwoModelsInOneEngineScoreIndependently) {
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("control", model_);
  registry.Register("treatment", second_model_);
  ServingEngine engine(&registry);

  // Per-model reference engines.
  ModelPool control_only(data_->meta, standardizer_);
  control_only.Register("control", model_);
  ServingEngine control_engine(&control_only);
  ModelPool treatment_only(data_->meta, standardizer_);
  treatment_only.Register("treatment", second_model_);
  ServingEngine treatment_engine(&treatment_only);

  auto sessions = GroupBySession(data_->full_test);
  std::vector<RankRequest> mixed;
  for (size_t s = 0; s < 10 && s < sessions.size(); ++s) {
    RankRequest request;
    request.session_id = sessions[s][0]->session_id;
    request.model = (s % 2 == 0) ? "control" : "treatment";
    request.items = sessions[s];
    mixed.push_back(std::move(request));
  }
  auto responses = engine.RankBatch(mixed);
  for (size_t s = 0; s < mixed.size(); ++s) {
    ServingEngine& reference =
        (s % 2 == 0) ? control_engine : treatment_engine;
    RankRequest solo = mixed[s];
    solo.model.clear();
    auto expected = reference.Rank(solo);
    ASSERT_EQ(responses[s].scores.size(), expected.scores.size());
    for (size_t i = 0; i < expected.scores.size(); ++i) {
      EXPECT_EQ(responses[s].scores[i], expected.scores[i]);
    }
  }
}

// ---------------------------------------------------------------------
// ServingStats.
// ---------------------------------------------------------------------

TEST(ServingStatsTest, PercentilesAreExactOverSamples) {
  ServingStats stats;
  // 1..100 ms, shuffled order must not matter.
  for (int ms = 100; ms >= 1; --ms) {
    stats.RecordRequest(/*items=*/2, static_cast<double>(ms));
  }
  EXPECT_EQ(stats.requests(), 100);
  EXPECT_EQ(stats.sessions(), 100);  // Backward-compatible alias.
  EXPECT_EQ(stats.items(), 200);
  EXPECT_DOUBLE_EQ(stats.MeanSessionLatencyMs(), 50.5);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(50.0), 50.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(95.0), 95.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(99.0), 99.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(100.0), 100.0);
  ServingStatsSnapshot snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 99.0);
  EXPECT_DOUBLE_EQ(snap.mean_ms, 50.5);
  EXPECT_GT(snap.qps, 0.0);
  stats.Reset();
  EXPECT_EQ(stats.requests(), 0);
  EXPECT_DOUBLE_EQ(stats.MeanSessionLatencyMs(), 0.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(99.0), 0.0);
}

TEST(ServingStatsTest, MergeFromEqualsRecordingTheUnion) {
  // Two disjoint shards...
  ServingStats a;
  ServingStats b;
  for (int ms = 1; ms <= 50; ++ms) {
    a.RecordRequest(/*items=*/2, static_cast<double>(ms));
  }
  for (int ms = 51; ms <= 100; ++ms) {
    b.RecordRequest(/*items=*/3, static_cast<double>(ms));
  }
  // ...and one stats object that saw every request directly.
  ServingStats direct;
  for (int ms = 1; ms <= 50; ++ms) {
    direct.RecordRequest(2, static_cast<double>(ms));
  }
  for (int ms = 51; ms <= 100; ++ms) {
    direct.RecordRequest(3, static_cast<double>(ms));
  }

  ServingStats merged;
  merged.MergeFrom(a.Snapshot());
  merged.MergeFrom(b.Snapshot());
  const ServingStatsSnapshot got = merged.Snapshot();
  const ServingStatsSnapshot want = direct.Snapshot();

  // Pooled-reservoir merging is EXACT while every source stays under
  // the reservoir cap: same counts, same mean, same percentiles as
  // recording the union into one object.
  EXPECT_EQ(got.requests, want.requests);
  EXPECT_EQ(got.items, want.items);
  EXPECT_DOUBLE_EQ(got.total_ms, want.total_ms);
  EXPECT_DOUBLE_EQ(got.mean_ms, want.mean_ms);
  EXPECT_DOUBLE_EQ(got.p50_ms, want.p50_ms);
  EXPECT_DOUBLE_EQ(got.p95_ms, want.p95_ms);
  EXPECT_DOUBLE_EQ(got.p99_ms, want.p99_ms);
  EXPECT_EQ(got.samples_ms.size(), 100u);
}

TEST(ServingStatsTest, MergeFromPoolsCountersNotAverages) {
  ServingStats a;
  a.RecordRequest(1, 1.0);
  a.RecordBatch(/*batch_requests=*/4, /*batch_items=*/40);
  a.RecordQueueDelay(2.0);
  a.RecordGateLookup(/*hit=*/true);
  ServingStats b;
  b.RecordRequest(1, 3.0);
  b.RecordBatch(/*batch_requests=*/1, /*batch_items=*/5);
  b.RecordBatch(/*batch_requests=*/1, /*batch_items=*/5);
  b.RecordQueueDelay(6.0);
  b.RecordGateLookup(/*hit=*/false);

  ServingStats merged;
  merged.MergeFrom(a.Snapshot());
  merged.MergeFrom(b.Snapshot());
  const ServingStatsSnapshot got = merged.Snapshot();
  EXPECT_EQ(got.batches, 3);
  // Pooled occupancy: (4+1+1)/3 — NOT the average of per-shard means
  // ((4.0 + 1.0) / 2 = 2.5).
  EXPECT_DOUBLE_EQ(got.mean_batch_requests, 2.0);
  EXPECT_EQ(got.max_batch_requests, 4);
  EXPECT_EQ(got.queued_requests, 2);
  EXPECT_DOUBLE_EQ(got.queue_mean_ms, 4.0);
  EXPECT_DOUBLE_EQ(got.queue_max_ms, 6.0);
  EXPECT_EQ(got.gate_cache_hits, 1);
  EXPECT_EQ(got.gate_cache_misses, 1);
  EXPECT_DOUBLE_EQ(got.queue_total_ms, 8.0);

  // Reset clears merged state too.
  merged.Reset();
  EXPECT_EQ(merged.Snapshot().requests, 0);
  EXPECT_EQ(merged.Snapshot().batches, 0);
}

TEST(ServingStatsTest, MergeFromTakesMaxWallClockForQps) {
  ServingStats a;
  ServingStats b;
  for (int i = 0; i < 10; ++i) {
    a.RecordRequest(1, 1.0);
    b.RecordRequest(1, 1.0);
  }
  const ServingStatsSnapshot sa = a.Snapshot();
  const ServingStatsSnapshot sb = b.Snapshot();
  ServingStats merged;
  merged.MergeFrom(sa);
  merged.MergeFrom(sb);
  const ServingStatsSnapshot got = merged.Snapshot();
  // Concurrent shards share the wall: 20 requests over max(wall_a,
  // wall_b) seconds, not over their sum.
  EXPECT_EQ(got.requests, 20);
  EXPECT_GE(got.wall_seconds, std::max(sa.wall_seconds, sb.wall_seconds));
  if (got.wall_seconds > 0.0) {
    EXPECT_NEAR(got.qps,
                20.0 / got.wall_seconds,
                1e-6 * got.qps + 1e-9);
  }
}

TEST_F(ServingTest, EngineStatsAccumulatePerRequest) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);
  auto requests = MakeSessionRequests(
      {sessions.begin(), sessions.begin() + 3});
  engine.RankBatch(requests);
  EXPECT_EQ(engine.stats().requests(), 3);
  EXPECT_EQ(engine.stats().items(),
            static_cast<int64_t>(sessions[0].size() + sessions[1].size() +
                                 sessions[2].size()));
  EXPECT_GT(engine.stats().total_ms(), 0.0);
  EXPECT_GT(engine.Stats().p99_ms, 0.0);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().requests(), 0);
}

// ---------------------------------------------------------------------
// A/B testing on the engine API.
// ---------------------------------------------------------------------

TEST_F(ServingTest, AbTestIsPairedAndDeterministic) {
  ModelPool registry(data_->meta, standardizer_);
  registry.Register("control", model_);
  registry.Register("treatment", second_model_);
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data_->full_test);

  AbTestResult r1 = RunAbTest(&engine, "control", "treatment", sessions, 42);
  AbTestResult r2 = RunAbTest(&engine, "control", "treatment", sessions, 42);
  EXPECT_EQ(r1.control.uctr, r2.control.uctr);
  EXPECT_EQ(r1.treatment.ucvr, r2.treatment.ucvr);
  EXPECT_EQ(r1.control.session_clicked.size(), sessions.size());
  EXPECT_GE(r1.control.uctr, 0.0);
  EXPECT_LE(r1.control.uctr, 1.0);

  // Same model in both arms -> identical outcomes, lift 0, p = 1.
  AbTestResult same = RunAbTest(&engine, "control", "control", sessions, 42);
  EXPECT_DOUBLE_EQ(same.uctr_lift_percent, 0.0);
  EXPECT_DOUBLE_EQ(same.ucvr_lift_percent, 0.0);
  EXPECT_DOUBLE_EQ(same.uctr_p_value, 1.0);
}

}  // namespace
}  // namespace awmoe
