// RetrainDriver end-to-end: the PR 9 train->serve loop. Each test
// stands up a live ServingEngine on a trained stable model, then lets
// the driver generate a fresh data window, retrain its replica with
// the ParallelTrainer, stage the clone, and tick the health-gated ramp
// while the drift gate is fed by shadow scoring — all under live
// Submit() traffic injected through between_ticks. Runs in the
// serving_ CTest group, so TSan and ASan cover the shadow-scoring path
// against the async front for free.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"
#include "train/retrain_driver.h"

namespace awmoe {
namespace {

/// The fixed "world": every retrain window re-derives its vocabulary
/// from this config (only the seed moves per round), so model shapes
/// stay valid across rounds.
JdConfig RetrainWorld() {
  JdConfig config;
  config.num_users = 200;
  config.num_items = 150;
  config.num_categories = 6;
  config.brands_per_category = 4;
  config.num_shops = 12;
  config.train_sessions = 240;
  config.test_sessions = 40;
  config.longtail1_sessions = 5;
  config.longtail2_sessions = 5;
  config.seed = 62001;
  return config;
}

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

class RetrainDriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new JdDataset(JdSyntheticGenerator(RetrainWorld()).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng(31);
    stable_model_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng);
    // The stable baseline must actually be good: the regression test
    // below relies on trained-vs-untrained engagement clearing the
    // drift floor.
    TrainerConfig trainer_config;
    trainer_config.batch_size = 64;
    trainer_config.epochs = 6;
    trainer_config.seed = 5;
    Trainer trainer(stable_model_, trainer_config);
    trainer.Train(data_->train, data_->meta, standardizer_);
    sessions_ = new std::vector<std::vector<const Example*>>(
        GroupBySession(data_->full_test));
  }
  static void TearDownTestSuite() {
    delete sessions_;
    delete stable_model_;
    delete standardizer_;
    delete data_;
    sessions_ = nullptr;
    stable_model_ = nullptr;
    standardizer_ = nullptr;
    data_ = nullptr;
  }

  static RankRequest RequestFor(size_t s) {
    const auto& session = (*sessions_)[s % sessions_->size()];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    return request;
  }

  /// Retrain options tuned for a 1-core test container: one epoch on
  /// two workers per round, a short ramp, permissive latency gates
  /// (the drift gate is the one under test), and an armed drift gate.
  static RetrainOptions Options() {
    RetrainOptions options;
    options.data = RetrainWorld();
    options.trainer.base.batch_size = 64;
    options.trainer.base.epochs = 1;
    options.trainer.base.seed = 100;
    options.trainer.num_workers = 2;
    options.trainer.grad_accumulation = 2;
    options.rollout.ramp_permille = {500, 1000};
    options.rollout.min_stage_requests = 10;
    options.rollout.max_p99_ratio = 50.0;
    options.rollout.p99_slack_ms = 500.0;
    options.rollout.min_drift_sessions = 40;
    options.rollout.max_engagement_drop = 0.10;
    options.rollout.engagement_slack = 0.05;
    options.shadow_sessions_per_tick = 16;
    options.shadow_top_k = 3;
    return options;
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* stable_model_;
  static std::vector<std::vector<const Example*>>* sessions_;
};

JdDataset* RetrainDriverTest::data_ = nullptr;
Standardizer* RetrainDriverTest::standardizer_ = nullptr;
AwMoeRanker* RetrainDriverTest::stable_model_ = nullptr;
std::vector<std::vector<const Example*>>* RetrainDriverTest::sessions_ =
    nullptr;

TEST_F(RetrainDriverTest, HealthyRoundPromotesUnderLiveSubmitTraffic) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", stable_model_);
  ServingEngineOptions engine_options;
  engine_options.max_queue_delay_ms = 0.2;
  ServingEngine engine(&pool, engine_options);

  RetrainDriver driver(&engine, &pool, "aw-moe", stable_model_->Clone(),
                       Options());

  // Live async traffic flows through the engine on every ramp tick;
  // futures are only collected (no assertions off the main thread).
  std::vector<std::future<RankResponse>> live;
  size_t next_session = 0;
  const RetrainRoundResult result = driver.RunRound([&] {
    for (int i = 0; i < 4; ++i) {
      live.push_back(engine.Submit(RequestFor(next_session++)));
    }
  });
  engine.Stop(/*drain=*/true);

  EXPECT_EQ(result.final_state, RolloutState::kPromoted)
      << result.last_decision;
  EXPECT_EQ(result.staged_version, 2);
  EXPECT_EQ(driver.promoted(), 1);
  EXPECT_EQ(driver.rolled_back(), 0);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 2);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(engine.router()->split_permille("aw-moe"), 0);

  // The gate gathered real evidence and it is visible in ServingStats:
  // per-version counters, the engine-wide totals, and the snapshot.
  const VersionHealthSnapshot candidate_health =
      engine.stats().VersionHealth("aw-moe", 2);
  EXPECT_GE(candidate_health.drift_sessions,
            Options().rollout.min_drift_sessions);
  EXPECT_GE(engine.stats().VersionHealth("aw-moe", 1).drift_sessions,
            Options().rollout.min_drift_sessions);
  EXPECT_GT(engine.Stats().drift_sessions, 0);
  EXPECT_GT(result.candidate_engagement, 0.0);
  EXPECT_GT(result.stable_engagement, 0.0);

  // Every live request resolved cleanly while the ramp ran.
  ASSERT_FALSE(live.empty());
  for (auto& future : live) {
    const RankResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status;
  }
}

TEST_F(RetrainDriverTest, RegressedRoundAutoRollsBackOnDrift) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", stable_model_);
  ServingEngine engine(&pool);

  RetrainDriver driver(&engine, &pool, "aw-moe", stable_model_->Clone(),
                       Options());
  // Sabotage the STAGED CLONE: ship untrained random weights, the
  // canonical "training pipeline silently broke" regression. Latency
  // and error health stay perfect — only the drift gate can catch it.
  driver.set_post_train_hook([this](Ranker* staged) {
    Rng rng(991);
    AwMoeRanker garbage(data_->meta, SmallAwMoeConfig(), &rng);
    CopyParametersInto(garbage, staged);
  });

  const RetrainRoundResult result = driver.RunRound();

  EXPECT_EQ(result.final_state, RolloutState::kRolledBack)
      << result.last_decision;
  EXPECT_EQ(driver.promoted(), 0);
  EXPECT_EQ(driver.rolled_back(), 1);
  // The regression never reached stable.
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 1);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(engine.router()->split_permille("aw-moe"), 0);
  EXPECT_NE(result.last_decision.find("engagement"), std::string::npos)
      << result.last_decision;
  EXPECT_LT(result.candidate_engagement, result.stable_engagement);

  // The sabotage did not poison the warm-start lineage: the next round
  // retrains from the surviving stable weights and promotes.
  driver.set_post_train_hook(nullptr);
  const RetrainRoundResult retry = driver.RunRound();
  EXPECT_EQ(retry.final_state, RolloutState::kPromoted)
      << retry.last_decision;
  EXPECT_GT(retry.staged_version, result.staged_version);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), retry.staged_version);
}

TEST_F(RetrainDriverTest, ConsecutiveRoundsPromoteMonotoneVersions) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", stable_model_);
  ServingEngine engine(&pool);

  RetrainDriver driver(&engine, &pool, "aw-moe", stable_model_->Clone(),
                       Options());
  const RetrainRoundResult first = driver.RunRound();
  const RetrainRoundResult second = driver.RunRound();

  EXPECT_EQ(first.final_state, RolloutState::kPromoted)
      << first.last_decision;
  EXPECT_EQ(second.final_state, RolloutState::kPromoted)
      << second.last_decision;
  EXPECT_EQ(driver.rounds(), 2);
  EXPECT_EQ(driver.promoted(), 2);
  EXPECT_EQ(first.staged_version, 2);
  EXPECT_EQ(second.staged_version, 3);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 3);
  EXPECT_EQ(driver.controller().stable_version(), 3);
  ASSERT_EQ(driver.history().size(), 2u);
  // Distinct windows, distinct seeds: the rounds really retrained.
  EXPECT_GT(first.train_seconds, 0.0);
  EXPECT_GT(second.train_seconds, 0.0);
  EXPECT_GT(first.ticks, 0);
}

}  // namespace
}  // namespace awmoe
