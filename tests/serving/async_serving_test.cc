// Concurrency suite for the async Submit() -> future serving front.
// Worker threads only collect results; all gtest assertions run on the
// main thread after joining (gtest assertions are not thread-safe).
// The whole binary runs under a CTest TIMEOUT (tests/CMakeLists.txt),
// so a deadlocked drain/shutdown path fails instead of hanging CI.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "serving/model_pool.h"
#include "serving/ranking_service.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"

namespace awmoe {
namespace {

// The async suite cross-checks engine scores against the synchronous
// legacy RankingService bitwise, so it pins the reference kernel tier
// (fast-tier agreement is epsilon-bounded; see kernel_tier_test.cc).
const bool kPinnedReferenceTier = [] {
  SetKernelTier(KernelTier::kReference);
  return true;
}();

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

class AsyncServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 200;
    jd.num_items = 150;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 50;
    jd.test_sessions = 40;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 321;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng(17);
    model_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng);
    sessions_ = new std::vector<std::vector<const Example*>>(
        GroupBySession(data_->full_test));
  }
  static void TearDownTestSuite() {
    delete sessions_;
    delete model_;
    delete standardizer_;
    delete data_;
    sessions_ = nullptr;
    model_ = nullptr;
    standardizer_ = nullptr;
    data_ = nullptr;
  }

  static std::unique_ptr<ModelPool> MakeRegistry() {
    auto pool = std::make_unique<ModelPool>(data_->meta, standardizer_);
    pool->Register("aw-moe", model_);
    return pool;
  }

  static RankRequest RequestFor(size_t s) {
    const auto& session = (*sessions_)[s % sessions_->size()];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    return request;
  }

  static int64_t ItemsOf(size_t s) {
    return static_cast<int64_t>((*sessions_)[s % sessions_->size()].size());
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* model_;
  static std::vector<std::vector<const Example*>>* sessions_;
};

JdDataset* AsyncServingTest::data_ = nullptr;
Standardizer* AsyncServingTest::standardizer_ = nullptr;
AwMoeRanker* AsyncServingTest::model_ = nullptr;
std::vector<std::vector<const Example*>>* AsyncServingTest::sessions_ =
    nullptr;

// ---------------------------------------------------------------------
// Bitwise equivalence to the synchronous legacy path under contention.
// ---------------------------------------------------------------------

TEST_F(AsyncServingTest, ConcurrentSubmitsMatchLegacyServiceBitwise) {
  // Expected scores from the pre-engine synchronous reference.
  RankingService legacy(model_, data_->meta, standardizer_,
                        /*share_gate=*/true);
  std::vector<std::vector<double>> expected(sessions_->size());
  for (size_t s = 0; s < sessions_->size(); ++s) {
    expected[s] = legacy.RankSession((*sessions_)[s]);
  }

  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.max_queue_delay_ms = 1.0;
  ServingEngine engine(&registry, options);

  // N threads x M submits each; every thread walks the whole session
  // pool at a different stride, so the queue coalesces requests from
  // different threads and repeats sessions (exercising the gate LRU).
  constexpr size_t kThreads = 4;
  const size_t kSubmits = 2 * sessions_->size();
  std::vector<std::vector<RankResponse>> results(
      kThreads, std::vector<RankResponse>(kSubmits));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, kSubmits, &engine, &results] {
      std::vector<std::future<RankResponse>> futures;
      futures.reserve(kSubmits);
      for (size_t m = 0; m < kSubmits; ++m) {
        futures.push_back(engine.Submit(RequestFor(t + m)));
      }
      for (size_t m = 0; m < kSubmits; ++m) {
        results[t][m] = futures[m].get();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t m = 0; m < kSubmits; ++m) {
      const RankResponse& response = results[t][m];
      const std::vector<double>& want =
          expected[(t + m) % sessions_->size()];
      ASSERT_TRUE(response.status.ok()) << response.status;
      ASSERT_EQ(response.scores.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(response.scores[i], want[i])
            << "thread " << t << " submit " << m << " item " << i;
      }
    }
  }
  EXPECT_EQ(engine.stats().requests(),
            static_cast<int64_t>(kThreads * kSubmits));
  EXPECT_EQ(engine.stats().queued_requests(),
            static_cast<int64_t>(kThreads * kSubmits));
}

// ---------------------------------------------------------------------
// Coalescing: the acceptance criterion. Two single-session requests
// submitted by two threads must be scored by ONE forward pass.
// ---------------------------------------------------------------------

TEST_F(AsyncServingTest, SubmitCoalescesConcurrentRequestsIntoOneBatch) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  // The delay bound is far away, so the only flush trigger is the
  // candidate cap — sized to exactly both sessions, making the
  // coalescing deterministic: the first submit waits, the second
  // completes the batch.
  options.max_queue_delay_ms = 2000.0;
  options.max_batch_candidates = ItemsOf(0) + ItemsOf(1);
  ServingEngine engine(&registry, options);

  std::promise<std::future<RankResponse>> slot_a, slot_b;
  std::thread thread_a(
      [&] { slot_a.set_value(engine.Submit(RequestFor(0))); });
  std::thread thread_b(
      [&] { slot_b.set_value(engine.Submit(RequestFor(1))); });
  std::future<RankResponse> future_a = slot_a.get_future().get();
  std::future<RankResponse> future_b = slot_b.get_future().get();
  thread_a.join();
  thread_b.join();
  RankResponse response_a = future_a.get();
  RankResponse response_b = future_b.get();

  // One forward pass carried both requests: the batch-occupancy
  // counters prove the cross-session amortisation actually happened.
  EXPECT_EQ(engine.stats().batches(), 1);
  EXPECT_EQ(engine.stats().max_batch_requests(), 2);
  ServingStatsSnapshot snap = engine.Stats();
  EXPECT_DOUBLE_EQ(snap.mean_batch_requests, 2.0);
  EXPECT_EQ(snap.mean_batch_items,
            static_cast<double>(ItemsOf(0) + ItemsOf(1)));

  // And the coalesced scores are bitwise what a synchronous engine
  // computes for each session alone.
  auto reference_registry_owner = MakeRegistry();
  ModelPool& reference_registry = *reference_registry_owner;
  ServingEngine reference(&reference_registry);
  for (const auto& [response, index] :
       {std::pair{&response_a, size_t{0}}, std::pair{&response_b, size_t{1}}}) {
    ASSERT_TRUE(response->status.ok()) << response->status;
    RankResponse want = reference.Rank(RequestFor(index));
    ASSERT_EQ(response->scores.size(), want.scores.size());
    for (size_t i = 0; i < want.scores.size(); ++i) {
      EXPECT_EQ(response->scores[i], want.scores[i]) << "item " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Time-bounded flush: a lone request must not wait for company forever.
// ---------------------------------------------------------------------

TEST_F(AsyncServingTest, LoneSubmitFlushesOnTimeout) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.max_queue_delay_ms = 5.0;
  options.max_batch_candidates = 1 << 30;  // Cap can never trigger.
  ServingEngine engine(&registry, options);

  RankResponse response = engine.Submit(RequestFor(0)).get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_GT(response.queue_ms, 0.0);
  EXPECT_GE(response.latency_ms, response.queue_ms);

  EXPECT_EQ(engine.stats().batches(), 1);
  EXPECT_EQ(engine.stats().max_batch_requests(), 1);
  EXPECT_EQ(engine.stats().queued_requests(), 1);
  EXPECT_GT(engine.Stats().queue_mean_ms, 0.0);

  auto reference_registry_owner = MakeRegistry();
  ModelPool& reference_registry = *reference_registry_owner;
  ServingEngine reference(&reference_registry);
  RankResponse want = reference.Rank(RequestFor(0));
  ASSERT_EQ(response.scores.size(), want.scores.size());
  for (size_t i = 0; i < want.scores.size(); ++i) {
    EXPECT_EQ(response.scores[i], want.scores[i]) << "item " << i;
  }
}

// ---------------------------------------------------------------------
// Backpressure: a full queue fails fast instead of queueing unbounded.
// ---------------------------------------------------------------------

TEST_F(AsyncServingTest, QueueFullBackpressureFailsFast) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.max_queue_delay_ms = 10000.0;     // Neither bound can trigger,
  options.max_batch_candidates = 1 << 30;   // so the first request stays
  options.max_pending_requests = 1;         // queued during the test.
  ServingEngine engine(&registry, options);

  std::future<RankResponse> queued = engine.Submit(RequestFor(0));
  std::future<RankResponse> rejected = engine.Submit(RequestFor(1));

  // The rejection is immediate — no flush involved.
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  RankResponse rejected_response = rejected.get();
  EXPECT_EQ(rejected_response.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rejected_response.scores.empty());
  EXPECT_EQ(rejected_response.session_id, RequestFor(1).session_id);

  // Draining still scores the accepted request.
  engine.Stop(/*drain=*/true);
  RankResponse queued_response = queued.get();
  ASSERT_TRUE(queued_response.status.ok()) << queued_response.status;
  auto reference_registry_owner = MakeRegistry();
  ModelPool& reference_registry = *reference_registry_owner;
  ServingEngine reference(&reference_registry);
  RankResponse want = reference.Rank(RequestFor(0));
  ASSERT_EQ(queued_response.scores.size(), want.scores.size());
  for (size_t i = 0; i < want.scores.size(); ++i) {
    EXPECT_EQ(queued_response.scores[i], want.scores[i]);
  }
}

TEST_F(AsyncServingTest, EmptyCandidateListFailsInvalidArgument) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngine engine(&registry);
  RankRequest empty;
  empty.session_id = 1234;
  RankResponse response = engine.Submit(std::move(empty)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(response.scores.empty());
  EXPECT_EQ(response.session_id, 1234);
}

// ---------------------------------------------------------------------
// Shutdown and drain semantics: futures always resolve, never leak.
// ---------------------------------------------------------------------

TEST_F(AsyncServingTest, StopWithDrainScoresPendingFutures) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.max_queue_delay_ms = 10000.0;
  options.max_batch_candidates = 1 << 30;
  ServingEngine engine(&registry, options);

  constexpr size_t kPending = 6;
  std::vector<std::future<RankResponse>> futures;
  for (size_t s = 0; s < kPending; ++s) {
    futures.push_back(engine.Submit(RequestFor(s)));
  }
  engine.Stop(/*drain=*/true);

  auto reference_registry_owner = MakeRegistry();
  ModelPool& reference_registry = *reference_registry_owner;
  ServingEngine reference(&reference_registry);
  for (size_t s = 0; s < kPending; ++s) {
    RankResponse response = futures[s].get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    RankResponse want = reference.Rank(RequestFor(s));
    ASSERT_EQ(response.scores.size(), want.scores.size());
    for (size_t i = 0; i < want.scores.size(); ++i) {
      EXPECT_EQ(response.scores[i], want.scores[i]);
    }
  }

  // Stop is idempotent, and the engine rejects post-stop submits while
  // the synchronous path keeps working.
  engine.Stop(/*drain=*/true);
  engine.Stop(/*drain=*/false);
  RankResponse late = engine.Submit(RequestFor(0)).get();
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.Rank(RequestFor(0)).scores.size(),
            static_cast<size_t>(ItemsOf(0)));
}

TEST_F(AsyncServingTest, StopWithoutDrainFailsPendingWithDistinctStatus) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.max_queue_delay_ms = 10000.0;
  options.max_batch_candidates = 1 << 30;
  ServingEngine engine(&registry, options);

  std::vector<std::future<RankResponse>> futures;
  for (size_t s = 0; s < 4; ++s) {
    futures.push_back(engine.Submit(RequestFor(s)));
  }
  engine.Stop(/*drain=*/false);
  for (auto& future : futures) {
    RankResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(response.scores.empty());
    // Even failure responses carry the resolved route, not the
    // caller's (empty, default-routed) request.model.
    EXPECT_EQ(response.model, "aw-moe");
  }
}

TEST_F(AsyncServingTest, DestructorDrainsPendingFutures) {
  std::vector<std::future<RankResponse>> futures;
  {
    auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
    ServingEngineOptions options;
    options.max_queue_delay_ms = 10000.0;
    options.max_batch_candidates = 1 << 30;
    ServingEngine engine(&registry, options);
    for (size_t s = 0; s < 3; ++s) {
      futures.push_back(engine.Submit(RequestFor(s)));
    }
  }  // ~ServingEngine drains: every future is ready once it returns.
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    RankResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status;
    EXPECT_FALSE(response.scores.empty());
  }
}

TEST_F(AsyncServingTest, StopNeverCalledSubmitNeverCalledIsSafe) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  {
    ServingEngine engine(&registry);
    // No Submit: the destructor must not spin up or wait on anything.
  }
  ServingEngine engine(&registry);
  engine.Stop(/*drain=*/true);  // Stop before any Submit is a no-op...
  RankResponse late = engine.Submit(RequestFor(0)).get();
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);  // ...and sticks.
}

// ---------------------------------------------------------------------
// Stats exactness under contention: recording happens from RankBatch
// worker threads and the flusher concurrently; counts must be exact.
// ---------------------------------------------------------------------

TEST(ServingStatsConcurrencyTest, CountsAndReservoirExactUnderContention) {
  ServingStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;  // 8x10k > kMaxSamples: saturates the reservoir.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.RecordRequest(/*items=*/3, /*latency_ms=*/1.0 + (i % 7));
        stats.RecordQueueDelay(0.25);
        if (i % 2 == 0) stats.RecordBatch(/*batch_requests=*/2,
                                          /*batch_items=*/6);
        stats.RecordGateLookup(i % 4 == 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr int64_t kTotal = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(stats.requests(), kTotal);
  EXPECT_EQ(stats.items(), 3 * kTotal);
  EXPECT_EQ(stats.queued_requests(), kTotal);
  EXPECT_EQ(stats.batches(), kTotal / 2);
  EXPECT_EQ(stats.max_batch_requests(), 2);
  EXPECT_EQ(stats.gate_cache_hits(), kTotal / 4);
  EXPECT_EQ(stats.gate_cache_misses(), kTotal - kTotal / 4);
  ServingStatsSnapshot snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.mean_batch_requests, 2.0);
  EXPECT_DOUBLE_EQ(snap.mean_batch_items, 6.0);
  EXPECT_DOUBLE_EQ(snap.queue_mean_ms, 0.25);
  EXPECT_DOUBLE_EQ(snap.queue_max_ms, 0.25);
  // The reservoir saturates at exactly kMaxSamples entries — no lost or
  // duplicated slots under contention.
  EXPECT_GT(kTotal, ServingStats::kMaxSamples);
  EXPECT_GT(stats.LatencyPercentileMs(50.0), 0.0);
}

TEST_F(AsyncServingTest, EngineStatsExactAcrossSubmittingThreads) {
  auto registry_owner = MakeRegistry();
  ModelPool& registry = *registry_owner;
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.5;
  // Indices wrap around the session list, so repeats exist; with the
  // score cache on they would (correctly) skip the forward pass and the
  // exact batch-occupancy identity below would not hold.
  options.score_cache_capacity = 0;
  ServingEngine engine(&registry, options);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &engine] {
      std::vector<std::future<RankResponse>> futures;
      for (size_t m = 0; m < kPerThread; ++m) {
        futures.push_back(engine.Submit(RequestFor(t * kPerThread + m)));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (std::thread& thread : threads) thread.join();

  int64_t want_items = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t m = 0; m < kPerThread; ++m) {
      want_items += ItemsOf(t * kPerThread + m);
    }
  }
  constexpr int64_t kTotal = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(engine.stats().requests(), kTotal);
  EXPECT_EQ(engine.stats().items(), want_items);
  EXPECT_EQ(engine.stats().queued_requests(), kTotal);
  // Every request went through some batch; occupancy accounting must
  // add up exactly.
  ServingStatsSnapshot snap = engine.Stats();
  EXPECT_GE(snap.batches, 1);
  EXPECT_EQ(std::llround(snap.mean_batch_requests *
                         static_cast<double>(snap.batches)),
            kTotal);
  EXPECT_EQ(std::llround(snap.mean_batch_items *
                         static_cast<double>(snap.batches)),
            want_items);
}

}  // namespace
}  // namespace awmoe
