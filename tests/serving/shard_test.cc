// Sharded fleet serving (serving/shard.h): consistent-hash ring
// invariants, deadline-aware admission math, and whole-fleet behaviour
// — bitwise score parity with a single engine, fan-out of model
// operations, topology changes, and snapshot leak checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/shard.h"

namespace awmoe {
namespace {

// ---------------------------------------------------------------------
// ShardRouter: the consistent-hash ring.
// ---------------------------------------------------------------------

constexpr int kProbeSessions = 20000;

std::vector<int> Placements(const ShardRouter& router, int sessions) {
  std::vector<int> placed(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    placed[static_cast<size_t>(s)] = router.ShardFor(s);
  }
  return placed;
}

TEST(ShardRouterTest, DeterministicAndSticky) {
  ShardRouter a;
  ShardRouter b;
  for (int id = 0; id < 4; ++id) {
    a.AddShard(id);
    b.AddShard(id);
  }
  // Same shard set -> same placement, across instances and across
  // repeated queries of one instance.
  for (int s = 0; s < 1000; ++s) {
    const int shard = a.ShardFor(s);
    EXPECT_EQ(shard, b.ShardFor(s));
    EXPECT_EQ(shard, a.ShardFor(s));
  }
}

TEST(ShardRouterTest, EveryShardGetsTraffic) {
  ShardRouter router;
  for (int id = 0; id < 4; ++id) router.AddShard(id);
  std::map<int, int> counts;
  for (int placed : Placements(router, kProbeSessions)) ++counts[placed];
  ASSERT_EQ(counts.size(), 4u);
  // 64 vnodes/shard keeps the split coarse but bounded: no shard should
  // see more than twice its fair share or less than a third of it.
  const int fair = kProbeSessions / 4;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, fair / 3) << "shard " << shard;
    EXPECT_LT(count, 2 * fair) << "shard " << shard;
  }
}

TEST(ShardRouterTest, AddShardMovesSessionsOnlyToTheNewShard) {
  ShardRouter router;
  for (int id = 0; id < 3; ++id) router.AddShard(id);
  const std::vector<int> before = Placements(router, kProbeSessions);
  router.AddShard(3);
  const std::vector<int> after = Placements(router, kProbeSessions);
  int moved = 0;
  for (int s = 0; s < kProbeSessions; ++s) {
    if (after[s] != before[s]) {
      // The defining rebalance invariant: a session either stays put or
      // moves to the shard that just joined — never between survivors.
      EXPECT_EQ(after[s], 3) << "session " << s << " moved " << before[s]
                             << " -> " << after[s];
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  // ~K/N of the keys move (1/4 here); allow 2x slack for vnode variance.
  EXPECT_LT(moved, kProbeSessions / 2);
}

TEST(ShardRouterTest, RemoveShardMovesOnlyItsOwnSessions) {
  ShardRouter router;
  for (int id = 0; id < 4; ++id) router.AddShard(id);
  const std::vector<int> before = Placements(router, kProbeSessions);
  ASSERT_TRUE(router.RemoveShard(2));
  const std::vector<int> after = Placements(router, kProbeSessions);
  std::set<int> new_homes;
  for (int s = 0; s < kProbeSessions; ++s) {
    if (before[s] == 2) {
      EXPECT_NE(after[s], 2);
      new_homes.insert(after[s]);
    } else {
      // Survivors' sessions never move.
      EXPECT_EQ(after[s], before[s]) << "session " << s;
    }
  }
  // The orphans scatter over the survivors instead of dog-piling one
  // neighbour (that is what the virtual nodes buy).
  EXPECT_GT(new_homes.size(), 1u);
}

TEST(ShardRouterTest, RemoveUnknownShardReturnsFalse) {
  ShardRouter router;
  router.AddShard(0);
  EXPECT_FALSE(router.RemoveShard(99));
  EXPECT_TRUE(router.HasShard(0));
  EXPECT_FALSE(router.HasShard(99));
  EXPECT_EQ(router.num_shards(), 1);
  EXPECT_EQ(router.shard_ids(), std::vector<int>{0});
}

// ---------------------------------------------------------------------
// Admission control math.
// ---------------------------------------------------------------------

ShardLoad MakeLoad(int64_t pending, double mean_service_ms, int lanes = 1) {
  ShardLoad load;
  load.pending_requests = pending;
  load.mean_service_ms = mean_service_ms;
  load.flush_lanes = lanes;
  return load;
}

TEST(MeanServiceEstimatorTest, MeasuresPerRequestDeltas) {
  MeanServiceEstimator est;
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
  // First window: 10 requests, 20 ms => 2 ms/request.
  EXPECT_DOUBLE_EQ(est.Update(10, 20.0), 2.0);
  // Next window only measures the delta: 5 more requests, 25 more ms.
  EXPECT_DOUBLE_EQ(est.Update(15, 45.0), 5.0);
  EXPECT_DOUBLE_EQ(est.estimate(), 5.0);
}

TEST(MeanServiceEstimatorTest, IdleWindowKeepsEstimate) {
  MeanServiceEstimator est;
  est.Update(10, 20.0);
  // Zero completed requests in the refresh window (idle shard): the
  // naive delta division would be 0/0 = NaN. Keep the last estimate.
  const double kept = est.Update(10, 20.0);
  EXPECT_FALSE(std::isnan(kept));
  EXPECT_DOUBLE_EQ(kept, 2.0);
  // And the idle window must not poison the next real one.
  EXPECT_DOUBLE_EQ(est.Update(14, 32.0), 3.0);
}

TEST(MeanServiceEstimatorTest, BackwardsCountersResyncBaseline) {
  MeanServiceEstimator est;
  est.Update(100, 400.0);
  // The engine's stats were reset underneath the estimator: counters
  // jump backwards. The estimate survives, and crucially the baseline
  // resyncs — the next window measures fresh deltas instead of waiting
  // for the counters to catch their old values back up.
  EXPECT_DOUBLE_EQ(est.Update(0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(est.Update(10, 60.0), 6.0);
}

TEST(MeanServiceEstimatorTest, NegativeServiceDeltaClampsAtZero) {
  MeanServiceEstimator est;
  est.Update(10, 50.0);
  // Requests advanced but accumulated service went backwards (reset
  // mid-window): treated as a resync, not a negative estimate.
  const double out = est.Update(12, 10.0);
  EXPECT_GE(out, 0.0);
  EXPECT_FALSE(std::isnan(out));
  // Fresh deltas from the resynced baseline.
  EXPECT_DOUBLE_EQ(est.Update(14, 16.0), 3.0);
}

TEST(MeanServiceEstimatorTest, ResetClearsEverything) {
  MeanServiceEstimator est;
  est.Update(10, 20.0);
  est.Reset();
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
  EXPECT_DOUBLE_EQ(est.Update(4, 12.0), 3.0);
}

TEST(AdmissionTest, QueueDelayEstimateIsLittlesLaw) {
  EXPECT_DOUBLE_EQ(EstimateQueueDelayMs(MakeLoad(10, 2.0, 1)), 20.0);
  EXPECT_DOUBLE_EQ(EstimateQueueDelayMs(MakeLoad(10, 2.0, 2)), 10.0);
  EXPECT_DOUBLE_EQ(EstimateQueueDelayMs(MakeLoad(0, 2.0, 1)), 0.0);
  // Lane count is clamped to >= 1 rather than dividing by zero.
  EXPECT_DOUBLE_EQ(EstimateQueueDelayMs(MakeLoad(4, 1.0, 0)), 4.0);
}

AdmissionOptions ExactOptions() {
  AdmissionOptions options;
  options.default_deadline_ms = 10.0;
  options.estimate_safety = 1.0;  // Pin the math: no conservative bias.
  options.max_shed_rate = 1.0;    // Pure shedding, no degraded mode.
  return options;
}

TEST(AdmissionTest, AdmitsUnderDeadlineShedsOver) {
  AdmissionController admission(ExactOptions());
  // Estimated sojourn = 4*2 + 2 = 10 <= 10: admitted.
  EXPECT_EQ(admission.Decide(MakeLoad(4, 2.0), 0.0),
            AdmissionDecision::kAdmit);
  // 5*2 + 2 = 12 > 10: shed.
  EXPECT_EQ(admission.Decide(MakeLoad(5, 2.0), 0.0),
            AdmissionDecision::kShed);
  EXPECT_EQ(admission.admitted(), 1);
  EXPECT_EQ(admission.shed(), 1);
  EXPECT_EQ(admission.degraded(), 0);
  EXPECT_DOUBLE_EQ(admission.window_shed_rate(), 0.5);
}

TEST(AdmissionTest, RequestDeadlineOverridesDefault) {
  AdmissionController admission(ExactOptions());
  const ShardLoad heavy = MakeLoad(10, 2.0);  // Sojourn 22ms.
  EXPECT_EQ(admission.Decide(heavy, 30.0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Decide(heavy, 21.0), AdmissionDecision::kShed);
  // deadline_ms <= 0 falls back to the 10ms default.
  EXPECT_EQ(admission.Decide(heavy, 0.0), AdmissionDecision::kShed);
}

TEST(AdmissionTest, SafetyFactorBiasesTowardShedding) {
  AdmissionOptions options = ExactOptions();
  options.estimate_safety = 2.0;
  AdmissionController admission(options);
  // Raw sojourn 2*2 + 2 = 6 <= 10, but widened 2x -> 12 > 10: shed.
  EXPECT_EQ(admission.Decide(MakeLoad(2, 2.0), 0.0),
            AdmissionDecision::kShed);
  AdmissionController trusting(ExactOptions());
  EXPECT_EQ(trusting.Decide(MakeLoad(2, 2.0), 0.0),
            AdmissionDecision::kAdmit);
}

TEST(AdmissionTest, DegradedFloorBoundsTheShedRate) {
  AdmissionOptions options = ExactOptions();
  options.max_shed_rate = 0.5;
  options.shed_window = 8;
  AdmissionController admission(options);
  const ShardLoad hopeless = MakeLoad(100, 2.0);  // Always over deadline.
  for (int i = 0; i < 200; ++i) admission.Decide(hopeless, 0.0);
  // Everything is over-deadline, yet the floor converts half of the
  // would-be sheds into degraded admits: the fleet never goes dark.
  EXPECT_EQ(admission.admitted(), 0);
  EXPECT_GT(admission.degraded(), 0);
  EXPECT_GT(admission.shed(), 0);
  EXPECT_LE(admission.window_shed_rate(), 0.5 + 1e-9);
  EXPECT_NEAR(static_cast<double>(admission.shed()) / 200.0, 0.5, 0.1);
  admission.Reset();
  EXPECT_EQ(admission.shed(), 0);
  EXPECT_DOUBLE_EQ(admission.window_shed_rate(), 0.0);
}

TEST(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionOptions options = ExactOptions();
  options.enabled = false;
  AdmissionController admission(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(admission.Decide(MakeLoad(1000, 5.0), 0.001),
              AdmissionDecision::kAdmit);
  }
  EXPECT_EQ(admission.admitted(), 10);
  EXPECT_DOUBLE_EQ(admission.window_shed_rate(), 0.0);
}

// ---------------------------------------------------------------------
// ShardedServingFleet.
// ---------------------------------------------------------------------

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

class ShardedFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 300;
    jd.num_items = 200;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 80;
    jd.test_sessions = 48;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 77;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng(5);
    model_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng);
    Rng rng2(12);
    second_model_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng2);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete standardizer_;
    delete model_;
    delete second_model_;
    data_ = nullptr;
    standardizer_ = nullptr;
    model_ = nullptr;
    second_model_ = nullptr;
  }

  static std::unique_ptr<ShardedServingFleet> MakeFleet(
      int shards, bool admission_enabled = false) {
    FleetOptions options;
    options.num_shards = shards;
    options.admission.enabled = admission_enabled;
    auto fleet = std::make_unique<ShardedServingFleet>(
        data_->meta, standardizer_, options);
    fleet->RegisterOwned("aw-moe", model_->Clone());
    return fleet;
  }

  static std::vector<RankRequest> FixtureRequests() {
    auto sessions = GroupBySession(data_->full_test);
    return MakeSessionRequests(sessions);
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* model_;
  static AwMoeRanker* second_model_;
};

JdDataset* ShardedFleetTest::data_ = nullptr;
Standardizer* ShardedFleetTest::standardizer_ = nullptr;
AwMoeRanker* ShardedFleetTest::model_ = nullptr;
AwMoeRanker* ShardedFleetTest::second_model_ = nullptr;

TEST_F(ShardedFleetTest, SubmitStormMatchesSingleEngineBitwise) {
  auto fleet = MakeFleet(4);
  const std::vector<RankRequest> requests = FixtureRequests();

  // Reference: one plain engine over its own clone of the same master.
  ModelPool reference_pool(data_->meta, standardizer_);
  reference_pool.RegisterOwned("aw-moe", model_->Clone());
  ServingEngine reference(&reference_pool);

  // 4-thread Submit storm; every shard pool holds an exact clone, so
  // scores must be bitwise independent of the shard count.
  std::vector<std::vector<std::future<RankResponse>>> futures(4);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < 4; ++c) {
    threads.emplace_back([c, &fleet, &requests, &futures] {
      for (size_t r = c; r < requests.size(); r += 4) {
        futures[c].push_back(fleet->Submit(requests[r]));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t c = 0; c < 4; ++c) {
    size_t r = c;
    for (std::future<RankResponse>& future : futures[c]) {
      const RankResponse response = future.get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      const RankResponse expected = reference.Rank(requests[r]);
      ASSERT_EQ(response.scores.size(), expected.scores.size());
      for (size_t i = 0; i < expected.scores.size(); ++i) {
        EXPECT_EQ(response.scores[i], expected.scores[i])
            << "request " << r << " item " << i;
      }
      r += 4;
    }
  }

  // Traffic landed on the session's ring shard and nowhere else.
  const FleetStats stats = fleet->Stats();
  EXPECT_EQ(stats.merged.requests,
            static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.admitted, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.shed, 0);
  EXPECT_GT(stats.imbalance, 0.0);
  fleet->Stop();
  reference.Stop();
  // Leak check: one live snapshot per shard pool (single stable arm).
  EXPECT_EQ(fleet->live_snapshots(), 4);
}

TEST_F(ShardedFleetTest, RankRoutesToTheRingShard) {
  auto fleet = MakeFleet(3);
  const std::vector<RankRequest> requests = FixtureRequests();
  for (const RankRequest& request : requests) {
    const RankResponse response = fleet->Rank(request);
    ASSERT_TRUE(response.status.ok());
    const int expected_shard = fleet->ShardForSession(request.session_id);
    // The shard's engine (and only it) recorded the request.
    EXPECT_GT(fleet->engine(expected_shard)->stats().requests(), 0);
  }
  int64_t total = 0;
  for (int id : fleet->shard_ids()) {
    total += fleet->engine(id)->stats().requests();
  }
  EXPECT_EQ(total, static_cast<int64_t>(requests.size()));
  fleet->Stop();
}

TEST_F(ShardedFleetTest, ModelOpsFanOutWithAgreedVersions) {
  auto fleet = MakeFleet(2);
  const std::vector<RankRequest> requests = FixtureRequests();

  // Publish v2 everywhere.
  EXPECT_EQ(fleet->UpdateModel("aw-moe", second_model_->Clone()), 2);
  for (const RankRequest& request : requests) {
    EXPECT_EQ(fleet->Rank(request).model_version, 2);
  }

  // Stage v3, pin the candidate arm: every shard serves version 3.
  EXPECT_EQ(fleet->StageCandidate("aw-moe", model_->Clone()), 3);
  EXPECT_EQ(fleet->live_snapshots(), 4);  // 2 shards x (stable+candidate).
  fleet->SetSplit("aw-moe", 500);
  RankRequest probe = requests[0];
  probe.arm_policy = ArmPolicy::kForceCandidate;
  EXPECT_EQ(fleet->Rank(probe).model_version, 3);
  probe.arm_policy = ArmPolicy::kForceStable;
  EXPECT_EQ(fleet->Rank(probe).model_version, 2);

  // With a 50% split, a session's arm is sticky and identical on every
  // shard (the router buckets by session, not by shard).
  for (const RankRequest& request : requests) {
    const int64_t v1 = fleet->Rank(request).model_version;
    const int64_t v2 = fleet->Rank(request).model_version;
    EXPECT_EQ(v1, v2) << "session " << request.session_id;
  }

  EXPECT_EQ(fleet->PromoteCandidate("aw-moe"), 3);
  for (const RankRequest& request : requests) {
    EXPECT_EQ(fleet->Rank(request).model_version, 3);
  }
  EXPECT_EQ(fleet->live_snapshots(), 2);  // Candidates retired fleet-wide.

  // Drop path: stage v4, drop it, stable stays v3.
  EXPECT_EQ(fleet->StageCandidate("aw-moe", second_model_->Clone()), 4);
  EXPECT_TRUE(fleet->DropCandidate("aw-moe"));
  EXPECT_FALSE(fleet->DropCandidate("aw-moe"));
  EXPECT_EQ(fleet->Rank(requests[0]).model_version, 3);
  fleet->Stop();
}

TEST_F(ShardedFleetTest, AddShardReplaysVersionHistory) {
  auto fleet = MakeFleet(2);
  fleet->UpdateModel("aw-moe", second_model_->Clone());   // v2
  fleet->StageCandidate("aw-moe", model_->Clone());       // v3 staged
  fleet->SetSplit("aw-moe", 300);

  const int added = fleet->AddShard();
  EXPECT_EQ(fleet->num_shards(), 3);

  // The new shard serves the SAME versions as the incumbents: stable v2,
  // candidate v3 — version numbers are fleet-coherent, not per-shard.
  RankRequest probe = FixtureRequests()[0];
  for (int64_t session = 0; session < 2000; ++session) {
    if (fleet->ShardForSession(session) == added) {
      probe.session_id = session;
      break;
    }
  }
  ASSERT_EQ(fleet->ShardForSession(probe.session_id), added);
  probe.arm_policy = ArmPolicy::kForceStable;
  EXPECT_EQ(fleet->Rank(probe).model_version, 2);
  probe.arm_policy = ArmPolicy::kForceCandidate;
  EXPECT_EQ(fleet->Rank(probe).model_version, 3);

  // Promote after the topology change still agrees everywhere.
  EXPECT_EQ(fleet->PromoteCandidate("aw-moe"), 3);
  probe.arm_policy = ArmPolicy::kRouter;
  EXPECT_EQ(fleet->Rank(probe).model_version, 3);
  fleet->Stop();
  EXPECT_EQ(fleet->live_snapshots(), 3);
}

TEST_F(ShardedFleetTest, RemoveShardRehomesItsSessions) {
  auto fleet = MakeFleet(3);
  const std::vector<RankRequest> requests = FixtureRequests();
  for (const RankRequest& request : requests) {
    ASSERT_TRUE(fleet->Rank(request).status.ok());
  }
  const std::vector<int> victims = fleet->shard_ids();
  const int victim = victims[1];
  std::map<int64_t, int> before;
  for (const RankRequest& request : requests) {
    before[request.session_id] = fleet->ShardForSession(request.session_id);
  }
  ASSERT_TRUE(fleet->RemoveShard(victim));
  EXPECT_FALSE(fleet->RemoveShard(victim));  // Already gone.
  EXPECT_EQ(fleet->num_shards(), 2);
  EXPECT_EQ(fleet->engine(victim), nullptr);
  for (const RankRequest& request : requests) {
    const int now = fleet->ShardForSession(request.session_id);
    EXPECT_NE(now, victim);
    if (before[request.session_id] != victim) {
      // Rebalance invariant carried through the fleet: survivors keep
      // their sessions (gate caches stay warm).
      EXPECT_EQ(now, before[request.session_id]);
    }
    EXPECT_TRUE(fleet->Rank(request).status.ok());
  }
  fleet->Stop();
  EXPECT_EQ(fleet->live_snapshots(), 2);
}

TEST_F(ShardedFleetTest, ShedsPastDeadlineWithoutTouchingVersionHealth) {
  FleetOptions options;
  options.num_shards = 2;
  options.admission.enabled = true;
  options.admission.max_shed_rate = 1.0;  // Pure shedding.
  // Refresh the service-time estimate quickly: the warm-up below must
  // leave every shard with a non-zero mean before the deadline probe.
  options.admission.load_refresh_every = 4;
  ShardedServingFleet fleet(data_->meta, standardizer_, options);
  fleet.RegisterOwned("aw-moe", model_->Clone());

  // Warm the service-time estimate with real traffic, then demand an
  // impossible deadline: everything sheds, instantly.
  const std::vector<RankRequest> requests = FixtureRequests();
  for (const RankRequest& request : requests) {
    ASSERT_TRUE(fleet.Submit(request).get().status.ok());
  }
  const int64_t served = fleet.Stats().merged.requests;
  ASSERT_GT(served, 0);

  int64_t rejected = 0;
  for (RankRequest request : requests) {
    request.deadline_ms = 1e-9;
    const RankResponse response = fleet.Submit(std::move(request)).get();
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(response.model, "aw-moe");  // Resolved before shedding.
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0);
  const FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.shed, rejected);
  EXPECT_GT(stats.shed_rate, 0.0);
  // Shed requests never reached an engine: request counts and version
  // health are exactly what the warm-up traffic left behind (a shed is
  // a load signal, not a model-quality signal).
  EXPECT_EQ(stats.merged.requests, served);
  for (const auto& health : stats.merged.version_health) {
    EXPECT_EQ(health.requests, served);
  }
  fleet.Stop();
}

TEST_F(ShardedFleetTest, FleetStatsMergeShardReservoirs) {
  auto fleet = MakeFleet(3);
  const std::vector<RankRequest> requests = FixtureRequests();
  std::vector<std::future<RankResponse>> futures;
  for (const RankRequest& request : requests) {
    futures.push_back(fleet->Submit(request));
  }
  for (auto& future : futures) ASSERT_TRUE(future.get().status.ok());
  const FleetStats stats = fleet->Stats();

  int64_t shard_requests = 0;
  std::vector<double> pooled;
  for (const ShardStatsSnapshot& shard : stats.shards) {
    shard_requests += shard.engine.requests;
    pooled.insert(pooled.end(), shard.engine.samples_ms.begin(),
                  shard.engine.samples_ms.end());
  }
  EXPECT_EQ(stats.merged.requests, shard_requests);
  EXPECT_EQ(stats.merged.samples_ms.size(), pooled.size());
  // The merged percentiles are EXACT nearest-rank percentiles of the
  // pooled union (the same formula ServingStats uses internally).
  std::sort(pooled.begin(), pooled.end());
  ASSERT_FALSE(pooled.empty());
  const auto nearest_rank = [&pooled](double pct) {
    const size_t rank = std::max<size_t>(
        static_cast<size_t>(
            std::ceil(pct / 100.0 * static_cast<double>(pooled.size()))),
        1);
    return pooled[rank - 1];
  };
  EXPECT_DOUBLE_EQ(stats.merged.p50_ms, nearest_rank(50.0));
  EXPECT_DOUBLE_EQ(stats.merged.p95_ms, nearest_rank(95.0));
  EXPECT_DOUBLE_EQ(stats.merged.p99_ms, nearest_rank(99.0));
  fleet->Stop();
}

}  // namespace
}  // namespace awmoe
