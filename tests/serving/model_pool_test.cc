// ModelPool suite: snapshot versioning, replica lanes, lease-based
// retirement, and the hot-swap storm. Worker threads only collect
// results; all gtest assertions run on the main thread after joining
// (gtest assertions are not thread-safe). Runs in the serving_ CTest
// group, so the TSan CI job covers the storm and the ASan job covers
// snapshot lifetime (use-after-free on retired replicas).

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "models/dnn_ranker.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"

namespace awmoe {
namespace {

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

class ModelPoolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 150;
    jd.num_items = 120;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 40;
    jd.test_sessions = 30;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 4242;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng_a(31);
    model_a_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng_a);
    Rng rng_b(77);  // Different init: distinguishable scores per version.
    model_b_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng_b);
    sessions_ = new std::vector<std::vector<const Example*>>(
        GroupBySession(data_->full_test));
  }
  static void TearDownTestSuite() {
    delete sessions_;
    delete model_b_;
    delete model_a_;
    delete standardizer_;
    delete data_;
    sessions_ = nullptr;
    model_b_ = nullptr;
    model_a_ = nullptr;
    standardizer_ = nullptr;
    data_ = nullptr;
  }

  static RankRequest RequestFor(size_t s) {
    const auto& session = (*sessions_)[s % sessions_->size()];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    return request;
  }

  /// Reference scores per session from a single-replica synchronous
  /// engine over `model` — the bitwise anchor every replica/version
  /// result is compared against.
  static std::vector<std::vector<double>> ReferenceScores(Ranker* model) {
    ModelPool pool(data_->meta, standardizer_);
    pool.Register("ref", model);
    ServingEngine engine(&pool);
    std::vector<std::vector<double>> scores(sessions_->size());
    for (size_t s = 0; s < sessions_->size(); ++s) {
      scores[s] = engine.Rank(RequestFor(s)).scores;
    }
    return scores;
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* model_a_;
  static AwMoeRanker* model_b_;
  static std::vector<std::vector<const Example*>>* sessions_;
};

JdDataset* ModelPoolTest::data_ = nullptr;
Standardizer* ModelPoolTest::standardizer_ = nullptr;
AwMoeRanker* ModelPoolTest::model_a_ = nullptr;
AwMoeRanker* ModelPoolTest::model_b_ = nullptr;
std::vector<std::vector<const Example*>>* ModelPoolTest::sessions_ = nullptr;

// ---------------------------------------------------------------------
// Snapshot and replica basics.
// ---------------------------------------------------------------------

TEST_F(ModelPoolTest, RegisterPublishesVersionOneWithReplicaLanes) {
  ModelPoolOptions options;
  options.replicas = 3;
  ModelPool pool(data_->meta, standardizer_, options);
  pool.Register("aw-moe", model_a_);

  auto snapshot = pool.CurrentSnapshot("aw-moe");
  EXPECT_EQ(snapshot->version(), 1);
  EXPECT_EQ(snapshot->num_replicas(), 3);
  EXPECT_TRUE(snapshot->gate_shareable());
  EXPECT_EQ(snapshot->primary(), model_a_);
  EXPECT_EQ(pool.swap_count(), 0);
  EXPECT_EQ(pool.live_snapshots(), 1);
  // Lanes 1..N-1 are deep clones, not aliases of the registered model.
  EXPECT_NE(snapshot->lane(1).model, model_a_);
  EXPECT_NE(snapshot->lane(2).model, model_a_);
  EXPECT_NE(snapshot->lane(1).model, snapshot->lane(2).model);
}

TEST_F(ModelPoolTest, SnapshotExposesGateWidthAndWarmsSessionGates) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  auto snapshot = pool.CurrentSnapshot("aw-moe");
  EXPECT_TRUE(snapshot->gate_shareable());
  EXPECT_EQ(snapshot->gate_width(), SmallAwMoeConfig().dims.num_experts);
  EXPECT_EQ(snapshot->gate_cache().size(), 0);

  // Warm-up fills the snapshot's LRU with one row per session (empty
  // resolved name routes to the default model, like serving requests).
  const int64_t warmed =
      pool.WarmSessionGates("", RolloutArm::kStable, *sessions_, 4096);
  EXPECT_EQ(warmed, static_cast<int64_t>(sessions_->size()));
  EXPECT_EQ(snapshot->gate_cache().size(), warmed);

  // Capacity bounds eviction exactly like serving-time inserts; 0
  // disables warming outright.
  ModelPool bounded(data_->meta, standardizer_);
  bounded.Register("aw-moe", model_a_);
  bounded.WarmSessionGates("aw-moe", RolloutArm::kStable, *sessions_, 2);
  EXPECT_EQ(bounded.CurrentSnapshot("aw-moe")->gate_cache().size(), 2);
  EXPECT_EQ(
      bounded.WarmSessionGates("aw-moe", RolloutArm::kStable, *sessions_, 0),
      0);
}

TEST_F(ModelPoolTest, AcquireSpreadsLeasesAcrossLanes) {
  ModelPoolOptions options;
  options.replicas = 2;
  ModelPool pool(data_->meta, standardizer_, options);
  pool.Register("aw-moe", model_a_);

  // Held leases force the next acquire onto the other (least-loaded)
  // lane; with none held, the round-robin tie-break rotates lanes.
  SnapshotLease first = pool.Acquire("aw-moe");
  SnapshotLease second = pool.Acquire("aw-moe");
  EXPECT_NE(first.replica(), second.replica());
  EXPECT_EQ(second.active_lanes_at_acquire(), 2);

  auto snapshot = pool.CurrentSnapshot("aw-moe");
  EXPECT_EQ(snapshot->lane(0).active.load() + snapshot->lane(1).active.load(),
            2);
}

TEST_F(ModelPoolTest, ReplicatedPoolScoresBitwiseEqualToSingleReplica) {
  std::vector<std::vector<double>> want = ReferenceScores(model_a_);

  ModelPoolOptions options;
  options.replicas = 4;
  ModelPool pool(data_->meta, standardizer_, options);
  pool.Register("aw-moe", model_a_);
  ServingEngineOptions engine_options;
  engine_options.max_batch_items = 32;
  engine_options.num_threads = 4;
  ServingEngine engine(&pool, engine_options);

  auto responses = engine.RankBatch(MakeSessionRequests(*sessions_));
  ASSERT_EQ(responses.size(), want.size());
  for (size_t s = 0; s < responses.size(); ++s) {
    EXPECT_EQ(responses[s].model_version, 1);
    ASSERT_EQ(responses[s].scores.size(), want[s].size());
    for (size_t i = 0; i < want[s].size(); ++i) {
      EXPECT_EQ(responses[s].scores[i], want[s][i])
          << "session " << s << " item " << i;
    }
  }
  // Leases were taken per micro-batch and spread over >1 lane (the
  // round-robin tie-break guarantees spread even without overlap).
  ServingStatsSnapshot snap = engine.Stats();
  ASSERT_EQ(snap.versions.size(), 1u);
  EXPECT_EQ(snap.versions[0].model, "aw-moe");
  EXPECT_EQ(snap.versions[0].version, 1);
  EXPECT_EQ(snap.versions[0].leases, snap.snapshot_leases);
  ASSERT_EQ(snap.versions[0].lane_leases.size(), 4u);
  int lanes_used = 0;
  for (int64_t count : snap.versions[0].lane_leases) {
    if (count > 0) ++lanes_used;
  }
  EXPECT_GE(lanes_used, 2);
}

TEST_F(ModelPoolTest, NonCloneableModelDegradesToSingleLane) {
  /// Clone() is optional; the pool must serve models without it.
  class NonCloneable : public DnnRanker {
   public:
    using DnnRanker::DnnRanker;
    std::unique_ptr<Ranker> Clone() const override { return nullptr; }
  };
  Rng rng(9);
  ModelDims dims = SmallAwMoeConfig().dims;
  NonCloneable dnn(data_->meta, dims, &rng);
  ModelPoolOptions options;
  options.replicas = 4;
  ModelPool pool(data_->meta, standardizer_, options);
  pool.Register("dnn", &dnn);
  EXPECT_EQ(pool.CurrentSnapshot("dnn")->num_replicas(), 1);
  ServingEngine engine(&pool);
  EXPECT_EQ(engine.Rank(RequestFor(0)).scores.size(),
            (*sessions_)[0].size());
}

TEST_F(ModelPoolTest, SubclassInheritingCloneDegradesToSingleLane) {
  /// A subclass that overrides the forward but forgets Clone() would
  /// "clone" into its base class (sliced overrides) — a different
  /// model. The pool must detect the type mismatch and serve it
  /// single-lane instead of letting scores depend on lane assignment.
  class ForgotClone : public DnnRanker {
   public:
    using DnnRanker::DnnRanker;
    Var ForwardLogits(const Batch& batch) override {
      return DnnRanker::ForwardLogits(batch);  // Stand-in override.
    }
  };
  Rng rng(10);
  ModelDims dims = SmallAwMoeConfig().dims;
  ForgotClone model(data_->meta, dims, &rng);
  ASSERT_NE(model.Clone(), nullptr);  // Inherited Clone() does run...
  ModelPoolOptions options;
  options.replicas = 4;
  ModelPool pool(data_->meta, standardizer_, options);
  pool.Register("forgot-clone", &model);
  // ...but the snapshot rejects the sliced copy.
  EXPECT_EQ(pool.CurrentSnapshot("forgot-clone")->num_replicas(), 1);
}

// ---------------------------------------------------------------------
// Versioned publishing and retirement.
// ---------------------------------------------------------------------

TEST_F(ModelPoolTest, UpdateModelPublishesNewVersionAndScores) {
  std::vector<std::vector<double>> want_a = ReferenceScores(model_a_);
  std::vector<std::vector<double>> want_b = ReferenceScores(model_b_);

  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  ServingEngine engine(&pool);

  RankResponse before = engine.Rank(RequestFor(0));
  EXPECT_EQ(before.model_version, 1);
  ASSERT_EQ(before.scores, want_a[0]);

  EXPECT_EQ(pool.UpdateModel("aw-moe", model_b_->Clone()), 2);
  EXPECT_EQ(pool.swap_count(), 1);
  EXPECT_EQ(engine.Stats().model_swaps, 1);

  RankResponse after = engine.Rank(RequestFor(0));
  EXPECT_EQ(after.model_version, 2);
  ASSERT_EQ(after.scores.size(), want_b[0].size());
  for (size_t i = 0; i < want_b[0].size(); ++i) {
    EXPECT_EQ(after.scores[i], want_b[0][i]) << "item " << i;
  }
  // The gate cache lives in the snapshot, so the new version starts
  // cold instead of serving rows computed under old weights.
  EXPECT_FALSE(after.gate_cache_hit);
}

TEST_F(ModelPoolTest, InFlightLeasePinsRetiredSnapshot) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  EXPECT_EQ(pool.live_snapshots(), 1);
  {
    SnapshotLease lease = pool.Acquire("aw-moe");
    EXPECT_EQ(lease.snapshot().version(), 1);
    pool.UpdateModel("aw-moe", model_b_->Clone());
    // The old snapshot survives while the lease holds it...
    EXPECT_EQ(pool.live_snapshots(), 2);
    EXPECT_EQ(lease.snapshot().version(), 1);
    // ...and new acquires already see the new version.
    EXPECT_EQ(pool.Acquire("aw-moe").snapshot().version(), 2);
  }
  // Last lease released: the retired snapshot frees itself.
  EXPECT_EQ(pool.live_snapshots(), 1);
}

TEST_F(ModelPoolTest, ConcurrentPublishersMintDistinctVersions) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 25;
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&pool, this] {
      for (int i = 0; i < kPerPublisher; ++i) {
        pool.UpdateModel("aw-moe", model_b_->Clone());
      }
    });
  }
  for (std::thread& publisher : publishers) publisher.join();
  // Every publish must have minted its own version: with a duplicate-
  // version race the final version would fall short of the swap count.
  EXPECT_EQ(pool.swap_count(), kPublishers * kPerPublisher);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(),
            1 + kPublishers * kPerPublisher);
  EXPECT_EQ(pool.live_snapshots(), 1);
}

// ---------------------------------------------------------------------
// The hot-swap storm (acceptance): a concurrent Submit storm across
// 100 UpdateModel publications must only ever see whole old-version or
// whole new-version responses — bitwise equal to the single-replica
// synchronous path for that version — and leak no snapshots.
// ---------------------------------------------------------------------

TEST_F(ModelPoolTest, HotSwapStormVersionConsistentAndLeakFree) {
  std::vector<std::vector<double>> want_a = ReferenceScores(model_a_);
  std::vector<std::vector<double>> want_b = ReferenceScores(model_b_);

  ModelPoolOptions pool_options;
  pool_options.replicas = 2;
  ModelPool pool(data_->meta, standardizer_, pool_options);
  pool.Register("aw-moe", model_a_);
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.2;
  ServingEngine engine(&pool, options);

  constexpr int kSwaps = 100;
  constexpr size_t kThreads = 4;
  constexpr size_t kSubmitsPerThread = 150;
  std::vector<std::vector<RankResponse>> results(
      kThreads, std::vector<RankResponse>(kSubmitsPerThread));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &engine, &results] {
      for (size_t m = 0; m < kSubmitsPerThread; ++m) {
        results[t][m] = engine.Submit(RequestFor(t + m)).get();
      }
    });
  }
  // Let at least one request complete on version 1 before swapping, so
  // `old_version_hits > 0` below is guaranteed, not scheduling luck.
  while (engine.stats().requests() == 0) std::this_thread::yield();
  // Versions alternate: odd -> model A weights, even -> model B. The
  // tiny sleep spreads the 100 publications across the storm instead of
  // burning through them before the queue flushes twice.
  for (int swap = 0; swap < kSwaps; ++swap) {
    AwMoeRanker* next = (swap % 2 == 0) ? model_b_ : model_a_;
    const int64_t version = pool.UpdateModel("aw-moe", next->Clone());
    EXPECT_EQ(version, swap + 2);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (std::thread& thread : threads) thread.join();
  engine.Stop(/*drain=*/true);

  int64_t old_version_hits = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t m = 0; m < kSubmitsPerThread; ++m) {
      const RankResponse& response = results[t][m];
      ASSERT_TRUE(response.status.ok()) << response.status;
      ASSERT_GE(response.model_version, 1);
      ASSERT_LE(response.model_version, kSwaps + 1);
      // Whole-response version consistency: every score bitwise matches
      // the synchronous single-replica reference OF THAT VERSION — a
      // swap mid-batch can never mix weights within one response.
      const std::vector<std::vector<double>>& want =
          (response.model_version % 2 == 1) ? want_a : want_b;
      const std::vector<double>& session_want =
          want[(t + m) % sessions_->size()];
      ASSERT_EQ(response.scores.size(), session_want.size());
      for (size_t i = 0; i < session_want.size(); ++i) {
        ASSERT_EQ(response.scores[i], session_want[i])
            << "thread " << t << " submit " << m << " version "
            << response.model_version << " item " << i;
      }
      if (response.model_version < kSwaps + 1) ++old_version_hits;
    }
  }
  // Sanity: the storm actually interleaved with swaps (some requests
  // served by non-final versions) — otherwise the test proved nothing.
  EXPECT_GT(old_version_hits, 0);
  EXPECT_EQ(pool.swap_count(), kSwaps);
  // No snapshot leaked: with traffic drained and every lease released,
  // only the currently published snapshot remains.
  EXPECT_EQ(pool.live_snapshots(), 1);
}

}  // namespace
}  // namespace awmoe
