// Staged-rollout suite: TrafficRouter bucketing (sticky, monotone,
// per-model independent), the ModelPool's two-arm stable/candidate
// routes, per-version health windows, the RolloutController's gates,
// and the acceptance storms — a full ramp auto-promoting and a forced
// rollback draining candidate leases, both under concurrent Submit()
// load. Worker threads only collect results; all gtest assertions run
// on the main thread after joining. Runs in the serving_ CTest group,
// so the TSan and ASan CI jobs cover the router and the candidate
// snapshot lifetime for free.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "serving/ab_test.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/rollout.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"

namespace awmoe {
namespace {

AwMoeConfig SmallAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

class RolloutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 150;
    jd.num_items = 120;
    jd.num_categories = 8;
    jd.brands_per_category = 4;
    jd.num_shops = 15;
    jd.train_sessions = 40;
    jd.test_sessions = 40;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 2026;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
    Rng rng_a(31);
    model_a_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng_a);
    Rng rng_b(77);  // Different init: the two versions score differently.
    model_b_ = new AwMoeRanker(data_->meta, SmallAwMoeConfig(), &rng_b);
    sessions_ = new std::vector<std::vector<const Example*>>(
        GroupBySession(data_->full_test));
  }
  static void TearDownTestSuite() {
    delete sessions_;
    delete model_b_;
    delete model_a_;
    delete standardizer_;
    delete data_;
    sessions_ = nullptr;
    model_b_ = nullptr;
    model_a_ = nullptr;
    standardizer_ = nullptr;
    data_ = nullptr;
  }

  static RankRequest RequestFor(size_t s) {
    const auto& session = (*sessions_)[s % sessions_->size()];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    return request;
  }

  /// Reference scores per session from a single-replica synchronous
  /// engine over `model` — the bitwise anchor each arm is compared to.
  static std::vector<std::vector<double>> ReferenceScores(Ranker* model) {
    ModelPool pool(data_->meta, standardizer_);
    pool.Register("ref", model);
    ServingEngine engine(&pool);
    std::vector<std::vector<double>> scores(sessions_->size());
    for (size_t s = 0; s < sessions_->size(); ++s) {
      scores[s] = engine.Rank(RequestFor(s)).scores;
    }
    return scores;
  }

  /// Bitwise comparison of one response against the reference of the
  /// version that reports having served it (odd = A weights, even = B).
  static void ExpectVersionConsistent(
      const RankResponse& response, size_t session_index,
      const std::vector<std::vector<double>>& want_a,
      const std::vector<std::vector<double>>& want_b) {
    const auto& want = (response.model_version % 2 == 1) ? want_a : want_b;
    const std::vector<double>& session_want =
        want[session_index % sessions_->size()];
    ASSERT_EQ(response.scores.size(), session_want.size());
    for (size_t i = 0; i < session_want.size(); ++i) {
      ASSERT_EQ(response.scores[i], session_want[i])
          << "session " << session_index << " version "
          << response.model_version << " item " << i;
    }
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
  static AwMoeRanker* model_a_;
  static AwMoeRanker* model_b_;
  static std::vector<std::vector<const Example*>>* sessions_;
};

JdDataset* RolloutTest::data_ = nullptr;
Standardizer* RolloutTest::standardizer_ = nullptr;
AwMoeRanker* RolloutTest::model_a_ = nullptr;
AwMoeRanker* RolloutTest::model_b_ = nullptr;
std::vector<std::vector<const Example*>>* RolloutTest::sessions_ = nullptr;

// ---------------------------------------------------------------------
// TrafficRouter: deterministic sticky bucketing.
// ---------------------------------------------------------------------

TEST_F(RolloutTest, BucketIsDeterministicInRangeAndModelIndependent) {
  int differs = 0;
  for (int64_t session = 0; session < 500; ++session) {
    const int bucket = TrafficRouter::Bucket("aw-moe", session);
    EXPECT_GE(bucket, 0);
    EXPECT_LT(bucket, TrafficRouter::kBuckets);
    EXPECT_EQ(bucket, TrafficRouter::Bucket("aw-moe", session));
    if (bucket != TrafficRouter::Bucket("dnn", session)) ++differs;
  }
  // The model name seeds the hash: two concurrent rollouts must not
  // ramp the same sessions in lockstep.
  EXPECT_GT(differs, 250);
}

TEST_F(RolloutTest, RouterDefaultsToStableAndHonoursSplit) {
  TrafficRouter router;
  EXPECT_EQ(router.split_permille("aw-moe"), 0);
  EXPECT_EQ(router.Route("aw-moe", 42), RolloutArm::kStable);

  router.SetSplit("aw-moe", 1000);
  EXPECT_EQ(router.Route("aw-moe", 42), RolloutArm::kCandidate);
  // Routes are per model: an unconfigured model stays stable.
  EXPECT_EQ(router.Route("dnn", 42), RolloutArm::kStable);

  router.SetSplit("aw-moe", 0);
  EXPECT_EQ(router.Route("aw-moe", 42), RolloutArm::kStable);
  router.ClearSplit("aw-moe");
  EXPECT_EQ(router.split_permille("aw-moe"), 0);
}

TEST_F(RolloutTest, RouterStickyAndMonotoneAcrossRamp) {
  TrafficRouter router;
  const std::vector<int> ramp = {10, 50, 250, 500, 1000};
  std::set<int64_t> previous;
  for (int permille : ramp) {
    router.SetSplit("aw-moe", permille);
    std::set<int64_t> candidates;
    for (int64_t session = 0; session < 400; ++session) {
      const RolloutArm arm = router.Route("aw-moe", session);
      // Sticky: the same split gives the same answer every time.
      EXPECT_EQ(arm, router.Route("aw-moe", session));
      if (arm == RolloutArm::kCandidate) candidates.insert(session);
    }
    // Monotone: raising the split only ever moves sessions stable ->
    // candidate; everyone on the candidate stays there.
    for (int64_t session : previous) {
      EXPECT_TRUE(candidates.count(session) > 0)
          << "session " << session << " left the candidate at " << permille;
    }
    EXPECT_GE(candidates.size(), previous.size());
    previous = std::move(candidates);
  }
  EXPECT_EQ(previous.size(), 400u);  // Split 1000 = everyone.
}

TEST_F(RolloutTest, RouteKeyRoundTripsBothArms) {
  EXPECT_EQ(EncodeRouteKey("aw-moe", RolloutArm::kStable), "aw-moe");
  const std::string candidate_key =
      EncodeRouteKey("aw-moe", RolloutArm::kCandidate);
  EXPECT_NE(candidate_key, "aw-moe");
  auto [stable_name, stable_arm] = DecodeRouteKey("aw-moe");
  EXPECT_EQ(stable_name, "aw-moe");
  EXPECT_EQ(stable_arm, RolloutArm::kStable);
  auto [candidate_name, candidate_arm] = DecodeRouteKey(candidate_key);
  EXPECT_EQ(candidate_name, "aw-moe");
  EXPECT_EQ(candidate_arm, RolloutArm::kCandidate);
}

// ---------------------------------------------------------------------
// ModelPool: two live pinned versions per model.
// ---------------------------------------------------------------------

TEST_F(RolloutTest, StageCandidateKeepsBothArmsLeasable) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));

  const int64_t version = pool.StageCandidate("aw-moe", model_b_->Clone());
  EXPECT_EQ(version, 2);
  EXPECT_TRUE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(pool.CandidateVersion("aw-moe"), 2);
  // Staging is not a stable publish: the default route still serves v1.
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 1);
  EXPECT_EQ(pool.swap_count(), 0);
  EXPECT_EQ(pool.live_snapshots(), 2);

  SnapshotLease stable = pool.Acquire("aw-moe", RolloutArm::kStable);
  SnapshotLease candidate = pool.Acquire("aw-moe", RolloutArm::kCandidate);
  EXPECT_EQ(stable.snapshot().version(), 1);
  EXPECT_EQ(stable.arm(), RolloutArm::kStable);
  EXPECT_EQ(candidate.snapshot().version(), 2);
  EXPECT_EQ(candidate.arm(), RolloutArm::kCandidate);
}

TEST_F(RolloutTest, CandidateAcquireFallsBackToStableAfterDrop) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  EXPECT_TRUE(pool.DropCandidate("aw-moe"));
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(pool.CandidateVersion("aw-moe"), 0);
  // No leases held: the dropped candidate retires immediately.
  EXPECT_EQ(pool.live_snapshots(), 1);

  SnapshotLease lease = pool.Acquire("aw-moe", RolloutArm::kCandidate);
  EXPECT_EQ(lease.snapshot().version(), 1);
  EXPECT_EQ(lease.arm(), RolloutArm::kStable);
  // Dropping again is a no-op, not an error.
  EXPECT_FALSE(pool.DropCandidate("aw-moe"));
}

TEST_F(RolloutTest, InFlightLeasePinsDroppedCandidate) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  {
    SnapshotLease lease = pool.Acquire("aw-moe", RolloutArm::kCandidate);
    pool.DropCandidate("aw-moe");
    // Rollback drains, not kills: the lease still pins the snapshot.
    EXPECT_EQ(pool.live_snapshots(), 2);
    EXPECT_EQ(lease.snapshot().version(), 2);
  }
  EXPECT_EQ(pool.live_snapshots(), 1);
}

TEST_F(RolloutTest, PromoteCandidateBecomesStableAndRetiresOldStable) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  EXPECT_EQ(pool.PromoteCandidate("aw-moe"), 2);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 2);
  EXPECT_EQ(pool.swap_count(), 1);  // A promote is a stable publish.
  EXPECT_EQ(pool.live_snapshots(), 1);
}

TEST_F(RolloutTest, DroppedVersionNumbersAreNeverReused) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  EXPECT_EQ(pool.StageCandidate("aw-moe", model_b_->Clone()), 2);
  pool.DropCandidate("aw-moe");
  // v2 was rolled back; its health history must not be inherited by the
  // next rollout, so the next candidate mints v3.
  EXPECT_EQ(pool.StageCandidate("aw-moe", model_b_->Clone()), 3);
  EXPECT_EQ(pool.PromoteCandidate("aw-moe"), 3);
  EXPECT_EQ(pool.UpdateModel("aw-moe", model_a_->Clone()), 4);
}

// ---------------------------------------------------------------------
// ServingEngine: both serving paths route through the TrafficRouter.
// ---------------------------------------------------------------------

TEST_F(RolloutTest, RankBatchServesArmsByRouterBitwise) {
  std::vector<std::vector<double>> want_a = ReferenceScores(model_a_);
  std::vector<std::vector<double>> want_b = ReferenceScores(model_b_);

  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  ServingEngine engine(&pool);
  engine.router()->SetSplit("aw-moe", 500);

  auto responses = engine.RankBatch(MakeSessionRequests(*sessions_));
  ASSERT_EQ(responses.size(), sessions_->size());
  int candidate_count = 0;
  for (size_t s = 0; s < responses.size(); ++s) {
    const RankResponse& response = responses[s];
    const RolloutArm want_arm =
        TrafficRouter::Bucket("aw-moe", response.session_id) < 500
            ? RolloutArm::kCandidate
            : RolloutArm::kStable;
    EXPECT_EQ(response.arm, want_arm) << "session " << s;
    EXPECT_EQ(response.model_version,
              want_arm == RolloutArm::kCandidate ? 2 : 1);
    ExpectVersionConsistent(response, s, want_a, want_b);
    if (response.arm == RolloutArm::kCandidate) ++candidate_count;
  }
  // A 50% split over 40 sessions lands strictly inside (0, 40) with
  // overwhelming probability under any reasonable hash.
  EXPECT_GT(candidate_count, 0);
  EXPECT_LT(candidate_count, static_cast<int>(responses.size()));
}

TEST_F(RolloutTest, ArmPolicyOverridesRouter) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  ServingEngine engine(&pool);
  // No router split: default traffic is all stable...
  RankResponse stable = engine.Rank(RequestFor(0));
  EXPECT_EQ(stable.arm, RolloutArm::kStable);
  EXPECT_EQ(stable.model_version, 1);
  // ...but a forced-candidate request reads the staged version (shadow
  // read), and a forced-stable one pins v1 even at split 1000.
  RankRequest force = RequestFor(0);
  force.arm_policy = ArmPolicy::kForceCandidate;
  RankResponse candidate = engine.Rank(force);
  EXPECT_EQ(candidate.arm, RolloutArm::kCandidate);
  EXPECT_EQ(candidate.model_version, 2);

  engine.router()->SetSplit("aw-moe", 1000);
  RankRequest pinned = RequestFor(0);
  pinned.arm_policy = ArmPolicy::kForceStable;
  RankResponse still_stable = engine.Rank(pinned);
  EXPECT_EQ(still_stable.arm, RolloutArm::kStable);
  EXPECT_EQ(still_stable.model_version, 1);

  // Forcing the candidate with none staged serves stable and says so.
  pool.DropCandidate("aw-moe");
  engine.router()->ClearSplit("aw-moe");
  RankResponse fallback = engine.Rank(force);
  EXPECT_EQ(fallback.arm, RolloutArm::kStable);
  EXPECT_EQ(fallback.model_version, 1);
}

TEST_F(RolloutTest, SubmitRoutesArmsThroughEncodedQueueKeys) {
  std::vector<std::vector<double>> want_a = ReferenceScores(model_a_);
  std::vector<std::vector<double>> want_b = ReferenceScores(model_b_);

  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.2;
  ServingEngine engine(&pool, options);
  engine.router()->SetSplit("aw-moe", 500);

  std::vector<std::future<RankResponse>> futures;
  for (size_t s = 0; s < sessions_->size(); ++s) {
    futures.push_back(engine.Submit(RequestFor(s)));
  }
  for (size_t s = 0; s < futures.size(); ++s) {
    RankResponse response = futures[s].get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.model, "aw-moe");  // Never the encoded key.
    const RolloutArm want_arm =
        TrafficRouter::Bucket("aw-moe", response.session_id) < 500
            ? RolloutArm::kCandidate
            : RolloutArm::kStable;
    EXPECT_EQ(response.arm, want_arm) << "session " << s;
    ExpectVersionConsistent(response, s, want_a, want_b);
  }
  engine.Stop();
}

TEST_F(RolloutTest, AsyncRejectionReportsModelNameNotRouteKey) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  ServingEngine engine(&pool);
  RankRequest empty;
  empty.session_id = 999;
  empty.arm_policy = ArmPolicy::kForceCandidate;  // Candidate route key.
  RankResponse response = engine.Submit(std::move(empty)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.model, "aw-moe");
  engine.Stop();
}

// ---------------------------------------------------------------------
// Per-version health windows.
// ---------------------------------------------------------------------

TEST_F(RolloutTest, VersionHealthTracksErrorsAndSlidingP99) {
  ServingStats stats;
  for (int i = 0; i < 90; ++i) stats.RecordVersionSample("m", 1, 1.0, true);
  for (int i = 0; i < 10; ++i) stats.RecordVersionSample("m", 1, 0.0, false);
  VersionHealthSnapshot health = stats.VersionHealth("m", 1);
  EXPECT_EQ(health.requests, 100);
  EXPECT_EQ(health.errors, 10);
  EXPECT_DOUBLE_EQ(health.error_rate, 0.1);
  EXPECT_EQ(health.window, 90);
  EXPECT_DOUBLE_EQ(health.p99_ms, 1.0);
  // Unknown versions report zeros instead of inventing health.
  EXPECT_EQ(stats.VersionHealth("m", 7).requests, 0);

  // The window slides: after kHealthWindow newer fast samples, the old
  // slow tail has aged out entirely.
  ServingStats sliding;
  for (int i = 0; i < 100; ++i) sliding.RecordVersionSample("m", 1, 50.0, true);
  for (int64_t i = 0; i < ServingStats::kHealthWindow; ++i) {
    sliding.RecordVersionSample("m", 1, 1.0, true);
  }
  health = sliding.VersionHealth("m", 1);
  EXPECT_EQ(health.window, ServingStats::kHealthWindow);
  EXPECT_DOUBLE_EQ(health.p99_ms, 1.0);
}

TEST_F(RolloutTest, HealthWindowRefusesToResurrectTrimmedVersions) {
  ServingStats stats;
  // Fill the per-model cap with versions 2..9...
  for (int64_t v = 2; v <= 1 + ServingStats::kMaxVersionsPerModel; ++v) {
    stats.RecordVersionSample("m", v, 1.0, true);
  }
  // ...then a straggler sample for v1 (older than everything retained):
  // it must be dropped, not resurrect a window by evicting a newer one
  // (and must not touch freed map nodes — the ASan job watches this).
  stats.RecordVersionSample("m", 1, 1.0, true);
  EXPECT_EQ(stats.VersionHealth("m", 1).requests, 0);
  for (int64_t v = 2; v <= 1 + ServingStats::kMaxVersionsPerModel; ++v) {
    EXPECT_EQ(stats.VersionHealth("m", v).requests, 1) << "version " << v;
  }
}

TEST_F(RolloutTest, BackpressureRejectCountsAgainstRoutedArmHealth) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  ServingEngineOptions options;
  // One queued request fills the queue, and nothing flushes on its own
  // (huge cap, one-second delay), so the second Submit deterministically
  // trips backpressure.
  options.max_pending_requests = 1;
  options.max_batch_candidates = 1 << 20;
  options.max_queue_delay_ms = 1000.0;
  ServingEngine engine(&pool, options);

  std::future<RankResponse> queued = engine.Submit(RequestFor(0));
  RankRequest rejected = RequestFor(1);
  rejected.arm_policy = ArmPolicy::kForceCandidate;
  RankResponse response = engine.Submit(std::move(rejected)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  // The reject was routed at the candidate arm: it lands in v2's health
  // window, where the rollout error-rate gate reads it.
  EXPECT_EQ(engine.stats().VersionHealth("aw-moe", 2).errors, 1);
  EXPECT_EQ(engine.stats().VersionHealth("aw-moe", 2).requests, 1);
  EXPECT_EQ(engine.stats().VersionHealth("aw-moe", 1).errors, 0);

  engine.Stop(/*drain=*/true);  // Scores the queued request.
  EXPECT_TRUE(queued.get().status.ok());
}

TEST_F(RolloutTest, EngineFeedsHealthWindowsPerVersion) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  pool.StageCandidate("aw-moe", model_b_->Clone());
  ServingEngine engine(&pool);
  engine.router()->SetSplit("aw-moe", 500);
  auto responses = engine.RankBatch(MakeSessionRequests(*sessions_));
  int64_t candidate_count = 0;
  for (const RankResponse& response : responses) {
    if (response.arm == RolloutArm::kCandidate) ++candidate_count;
  }
  const ServingStats& stats = engine.stats();
  EXPECT_EQ(stats.VersionHealth("aw-moe", 2).requests, candidate_count);
  EXPECT_EQ(stats.VersionHealth("aw-moe", 1).requests,
            static_cast<int64_t>(responses.size()) - candidate_count);
  EXPECT_GT(stats.VersionHealth("aw-moe", 1).p99_ms, 0.0);
  // The full snapshot carries both windows too.
  EXPECT_EQ(engine.Stats().version_health.size(), 2u);
}

// ---------------------------------------------------------------------
// RolloutController: health gates.
// ---------------------------------------------------------------------

TEST_F(RolloutTest, ControllerHoldsStageUntilEvidence) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {500, 1000};
  options.min_stage_requests = 20;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  EXPECT_EQ(controller.state(), RolloutState::kIdle);

  const int64_t version = controller.Begin(model_b_->Clone());
  EXPECT_EQ(version, 2);
  EXPECT_EQ(controller.state(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 0);
  EXPECT_EQ(router.split_permille("aw-moe"), 500);

  // No candidate traffic yet: the gate must hold, not promote.
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 0);
  EXPECT_NE(controller.last_decision().find("holding"), std::string::npos);
}

TEST_F(RolloutTest, ControllerWalksRampAndPromotesWhenHealthy) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {250, 500, 1000};
  options.min_stage_requests = 20;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  for (int i = 0; i < 50; ++i) stats.RecordVersionSample("aw-moe", 1, 1.0, true);
  auto feed_candidate = [&stats](int n) {
    for (int i = 0; i < n; ++i) {
      stats.RecordVersionSample("aw-moe", 2, 1.1, true);
    }
  };
  feed_candidate(20);
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 1);
  EXPECT_EQ(router.split_permille("aw-moe"), 500);

  // Stage evidence resets per stage: without fresh candidate traffic
  // the next tick holds at stage 1.
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 1);

  feed_candidate(20);
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 2);
  EXPECT_EQ(router.split_permille("aw-moe"), 1000);

  feed_candidate(20);
  EXPECT_EQ(controller.Advance(), RolloutState::kPromoted);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 2);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(router.split_permille("aw-moe"), 0);
  EXPECT_EQ(controller.stable_version(), 2);
  EXPECT_NE(controller.last_decision().find("promoted"), std::string::npos);
  // Ticking a finished rollout is a no-op.
  EXPECT_EQ(controller.Advance(), RolloutState::kPromoted);
}

TEST_F(RolloutTest, ControllerRollsBackOnErrorRate) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {500, 1000};
  options.min_stage_requests = 20;
  options.max_error_rate = 0.05;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  for (int i = 0; i < 15; ++i) stats.RecordVersionSample("aw-moe", 2, 1.0, true);
  for (int i = 0; i < 5; ++i) stats.RecordVersionSample("aw-moe", 2, 0.0, false);
  EXPECT_EQ(controller.Advance(), RolloutState::kRolledBack);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(router.split_permille("aw-moe"), 0);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 1);
  EXPECT_NE(controller.last_decision().find("error rate"), std::string::npos);
}

TEST_F(RolloutTest, LateStageErrorBurstTripsGateDespiteHealthyHistory) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {500, 1000};
  options.min_stage_requests = 20;
  options.max_error_rate = 0.05;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  // Stage 0: a long healthy history (1000 ok requests).
  for (int i = 0; i < 1000; ++i) {
    stats.RecordVersionSample("aw-moe", 2, 1.0, true);
  }
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 1);

  // Stage 1: the candidate starts failing under full load. Lifetime
  // error rate is 20/1020 < 5%, but the STAGE is 100% failures — the
  // gate must trip on the stage, not the diluted lifetime.
  for (int i = 0; i < 20; ++i) {
    stats.RecordVersionSample("aw-moe", 2, 0.0, false);
  }
  EXPECT_EQ(controller.Advance(), RolloutState::kRolledBack);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_NE(controller.last_decision().find("error rate"), std::string::npos);
}

TEST_F(RolloutTest, ControllerRollsBackOnP99Regression) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {500, 1000};
  options.min_stage_requests = 20;
  options.max_p99_ratio = 1.5;
  options.p99_slack_ms = 1.0;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  for (int i = 0; i < 50; ++i) stats.RecordVersionSample("aw-moe", 1, 1.0, true);
  // Candidate p99 of 100ms vs a budget of 1.0 * 1.5 + 1.0 = 2.5ms.
  for (int i = 0; i < 20; ++i) {
    stats.RecordVersionSample("aw-moe", 2, 100.0, true);
  }
  EXPECT_EQ(controller.Advance(), RolloutState::kRolledBack);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_NE(controller.last_decision().find("p99"), std::string::npos);
  // A rolled-back controller can run the next rollout: v3, not v2 again.
  EXPECT_EQ(controller.Begin(model_b_->Clone()), 3);
}

// ---------------------------------------------------------------------
// RolloutController: the accuracy-drift gate (PR 9). Samples are fed by
// hand here; tests/serving/retrain_driver_test.cc covers the shadow-
// scoring loop that feeds them in production.
// ---------------------------------------------------------------------

TEST_F(RolloutTest, DriftGateHoldsUntilBothArmsHaveEvidence) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {500, 1000};
  options.min_stage_requests = 10;
  options.min_drift_sessions = 25;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  auto feed_latency = [&stats](int64_t version, int n) {
    for (int i = 0; i < n; ++i) {
      stats.RecordVersionSample("aw-moe", version, 1.0, true);
    }
  };
  feed_latency(1, 20);
  feed_latency(2, 20);
  // Latency/error evidence is in, drift evidence is not: hold.
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 0);
  EXPECT_NE(controller.last_decision().find("drift evidence"),
            std::string::npos);

  // Candidate-only evidence still holds: the gate compares arms, so it
  // needs BOTH sides before it may pass judgement.
  for (int i = 0; i < 30; ++i) stats.RecordDriftSample("aw-moe", 2, true);
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 0);
  EXPECT_NE(controller.last_decision().find("drift evidence"),
            std::string::npos);

  // Stable evidence arrives and the arms are equally engaged: advance.
  for (int i = 0; i < 30; ++i) stats.RecordDriftSample("aw-moe", 1, true);
  feed_latency(2, 10);  // Fresh stage evidence for the latency gates.
  EXPECT_EQ(controller.Advance(), RolloutState::kRamping);
  EXPECT_EQ(controller.stage(), 1);

  // The counters surface everywhere the gate's inputs are observable.
  EXPECT_EQ(stats.VersionHealth("aw-moe", 2).drift_sessions, 30);
  EXPECT_EQ(stats.VersionHealth("aw-moe", 2).drift_engaged, 30);
  EXPECT_DOUBLE_EQ(stats.VersionHealth("aw-moe", 2).drift_engaged_rate, 1.0);
  EXPECT_EQ(stats.drift_sessions(), 60);
  EXPECT_EQ(stats.Snapshot().drift_sessions, 60);
}

TEST_F(RolloutTest, DriftGateRollsBackRegressedEngagement) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {500, 1000};
  options.min_stage_requests = 10;
  options.min_drift_sessions = 20;
  options.max_engagement_drop = 0.05;
  options.engagement_slack = 0.02;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  for (int i = 0; i < 20; ++i) {
    stats.RecordVersionSample("aw-moe", 1, 1.0, true);
    stats.RecordVersionSample("aw-moe", 2, 1.0, true);
  }
  // Stable engages 90% of shadow sessions, the candidate only 40% —
  // far below the floor 0.90 * 0.95 - 0.02 = 0.835.
  for (int i = 0; i < 50; ++i) stats.RecordDriftSample("aw-moe", 1, i < 45);
  for (int i = 0; i < 50; ++i) stats.RecordDriftSample("aw-moe", 2, i < 20);
  EXPECT_EQ(controller.Advance(), RolloutState::kRolledBack);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 1);
  EXPECT_EQ(router.split_permille("aw-moe"), 0);
  EXPECT_NE(controller.last_decision().find("engagement"), std::string::npos);
}

TEST_F(RolloutTest, DriftGatePassesComparableEngagementToPromotion) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  TrafficRouter router;
  ServingStats stats;
  RolloutOptions options;
  options.ramp_permille = {1000};
  options.min_stage_requests = 10;
  options.min_drift_sessions = 20;
  options.max_engagement_drop = 0.05;
  options.engagement_slack = 0.02;
  RolloutController controller(&pool, &router, &stats, "aw-moe", options);
  controller.Begin(model_b_->Clone());

  for (int i = 0; i < 20; ++i) {
    stats.RecordVersionSample("aw-moe", 1, 1.0, true);
    stats.RecordVersionSample("aw-moe", 2, 1.0, true);
  }
  // Candidate 78% vs stable 80%: inside the tolerated drop (floor
  // 0.80 * 0.95 - 0.02 = 0.74), so a small wobble does not kill it.
  for (int i = 0; i < 50; ++i) stats.RecordDriftSample("aw-moe", 1, i < 40);
  for (int i = 0; i < 50; ++i) stats.RecordDriftSample("aw-moe", 2, i < 39);
  EXPECT_EQ(controller.Advance(), RolloutState::kPromoted);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 2);
  EXPECT_EQ(controller.stable_version(), 2);
}

// ---------------------------------------------------------------------
// Acceptance storms: a full ramp under concurrent Submit() load.
// ---------------------------------------------------------------------

/// Per-session phase machine for the storm assertions: during a healthy
/// ramp a session may only move stable@v1 -> candidate@v2 ->
/// (post-promote) stable@v2; during a rolled-back ramp only stable@v1
/// -> candidate@v2 -> (post-rollback) stable@v1. Any other transition
/// breaks stickiness, monotonicity, or whole-response consistency.
struct SessionPhase {
  int phase = 0;
};

TEST_F(RolloutTest, FullRampAutoPromotesUnderSubmitStorm) {
  std::vector<std::vector<double>> want_a = ReferenceScores(model_a_);
  std::vector<std::vector<double>> want_b = ReferenceScores(model_b_);

  ModelPoolOptions pool_options;
  pool_options.replicas = 2;
  ModelPool pool(data_->meta, standardizer_, pool_options);
  pool.Register("aw-moe", model_a_);
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.2;
  ServingEngine engine(&pool, options);

  RolloutOptions rollout_options;
  rollout_options.ramp_permille = {250, 500, 1000};
  rollout_options.min_stage_requests = 25;
  // Permissive latency gate: this storm tests the mechanics, not the
  // 1-core container's scheduling jitter.
  rollout_options.max_p99_ratio = 50.0;
  rollout_options.p99_slack_ms = 500.0;
  RolloutController controller(&pool, engine.router(), &engine.stats(),
                               "aw-moe", rollout_options);

  constexpr size_t kThreads = 4;
  constexpr size_t kSubmitsPerThread = 150;
  std::vector<std::vector<RankResponse>> results(
      kThreads, std::vector<RankResponse>(kSubmitsPerThread));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    // Sessions are partitioned by thread (s = t + m*kThreads), so each
    // session's responses arrive in that thread's submit order.
    threads.emplace_back([t, &engine, &results] {
      for (size_t m = 0; m < kSubmitsPerThread; ++m) {
        results[t][m] = engine.Submit(RequestFor(t + m * kThreads)).get();
      }
    });
  }

  controller.Begin(model_b_->Clone());
  // Drive the ramp while the storm runs...
  while (controller.state() == RolloutState::kRamping &&
         engine.stats().requests() <
             static_cast<int64_t>(kThreads * kSubmitsPerThread)) {
    controller.Advance();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& thread : threads) thread.join();
  // ...then top up with synchronous routed traffic until it completes
  // (the storm may have finished before the last stage gathered its
  // evidence). Bounded: each round adds a full session sweep.
  std::vector<std::vector<RankResponse>> extra_rounds;
  for (int round = 0;
       controller.state() == RolloutState::kRamping && round < 200; ++round) {
    extra_rounds.push_back(engine.RankBatch(MakeSessionRequests(*sessions_)));
    controller.Advance();
  }
  engine.Stop(/*drain=*/true);

  ASSERT_EQ(controller.state(), RolloutState::kPromoted)
      << controller.last_decision();
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 2);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(engine.router()->split_permille("aw-moe"), 0);
  // Promote retired v1 and kept v2: traffic drained, no snapshot leaks.
  EXPECT_EQ(pool.live_snapshots(), 1);

  // Whole-response version consistency + the sticky/monotone phase
  // machine over every response, in per-session order.
  std::map<int64_t, SessionPhase> phases;
  int64_t candidate_hits = 0;
  auto check = [&](const RankResponse& response, size_t session_index) {
    ASSERT_TRUE(response.status.ok()) << response.status;
    ASSERT_GE(response.model_version, 1);
    ASSERT_LE(response.model_version, 2);
    ExpectVersionConsistent(response, session_index, want_a, want_b);
    SessionPhase& phase = phases[response.session_id];
    if (response.arm == RolloutArm::kCandidate) {
      ASSERT_EQ(response.model_version, 2);
      ASSERT_LE(phase.phase, 1) << "candidate served after promote";
      phase.phase = 1;
      ++candidate_hits;
    } else if (response.model_version == 1) {
      ASSERT_EQ(phase.phase, 0)
          << "session " << response.session_id
          << " fell back to stable v1 after reaching the candidate";
    } else {
      phase.phase = 2;  // Post-promote stable v2.
    }
  };
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t m = 0; m < kSubmitsPerThread; ++m) {
      check(results[t][m], t + m * kThreads);
    }
  }
  for (const auto& round : extra_rounds) {
    for (size_t s = 0; s < round.size(); ++s) check(round[s], s);
  }
  // The ramp actually moved sessions onto the candidate before promote.
  EXPECT_GT(candidate_hits, 0);
}

TEST_F(RolloutTest, ForcedRollbackDrainsCandidateUnderSubmitStorm) {
  std::vector<std::vector<double>> want_a = ReferenceScores(model_a_);
  std::vector<std::vector<double>> want_b = ReferenceScores(model_b_);

  ModelPoolOptions pool_options;
  pool_options.replicas = 2;
  ModelPool pool(data_->meta, standardizer_, pool_options);
  pool.Register("aw-moe", model_a_);
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.2;
  ServingEngine engine(&pool, options);

  RolloutOptions rollout_options;
  rollout_options.ramp_permille = {500, 1000};
  rollout_options.min_stage_requests = 10;
  rollout_options.max_p99_ratio = 50.0;
  rollout_options.p99_slack_ms = 500.0;
  RolloutController controller(&pool, engine.router(), &engine.stats(),
                               "aw-moe", rollout_options);

  constexpr size_t kThreads = 4;
  constexpr size_t kSubmitsPerThread = 120;
  std::vector<std::vector<RankResponse>> results(
      kThreads, std::vector<RankResponse>(kSubmitsPerThread));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &engine, &results] {
      for (size_t m = 0; m < kSubmitsPerThread; ++m) {
        results[t][m] = engine.Submit(RequestFor(t + m * kThreads)).get();
      }
    });
  }

  controller.Begin(model_b_->Clone());
  // Let the candidate take real traffic mid-storm, then force the
  // rollback an operator would on a misbehaving model.
  while (engine.stats().VersionHealth("aw-moe", 2).requests < 20) {
    std::this_thread::yield();
  }
  EXPECT_EQ(controller.Rollback("operator abort"),
            RolloutState::kRolledBack);
  for (std::thread& thread : threads) thread.join();
  engine.Stop(/*drain=*/true);

  EXPECT_EQ(controller.state(), RolloutState::kRolledBack);
  EXPECT_FALSE(pool.HasCandidate("aw-moe"));
  EXPECT_EQ(engine.router()->split_permille("aw-moe"), 0);
  EXPECT_EQ(pool.CurrentSnapshot("aw-moe")->version(), 1);
  EXPECT_EQ(pool.swap_count(), 0);  // Nothing was ever promoted.
  // THE drain check: every candidate lease released, the dropped
  // snapshot retired, only stable v1 remains alive.
  EXPECT_EQ(pool.live_snapshots(), 1);

  // Phase machine with rollback: stable@v1 -> candidate@v2 -> back to
  // stable@v1 is legal; candidate traffic after the rollback is not
  // (in-flight flushes excepted — they hold pre-rollback leases, which
  // is exactly the drain semantics, so they count as phase 1).
  std::map<int64_t, SessionPhase> phases;
  int64_t candidate_hits = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t m = 0; m < kSubmitsPerThread; ++m) {
      const RankResponse& response = results[t][m];
      ASSERT_TRUE(response.status.ok()) << response.status;
      ExpectVersionConsistent(response, t + m * kThreads, want_a, want_b);
      SessionPhase& phase = phases[response.session_id];
      if (response.arm == RolloutArm::kCandidate) {
        ASSERT_EQ(response.model_version, 2);
        ASSERT_LE(phase.phase, 1);
        phase.phase = std::max(phase.phase, 1);
        ++candidate_hits;
      } else {
        ASSERT_EQ(response.model_version, 1);
        if (phase.phase == 1) phase.phase = 2;
      }
    }
  }
  EXPECT_GT(candidate_hits, 0);
}

// ---------------------------------------------------------------------
// The online replay mode (§IV-E style).
// ---------------------------------------------------------------------

TEST_F(RolloutTest, ReplayRolloutWalksRampToPromotion) {
  ModelPool pool(data_->meta, standardizer_);
  pool.Register("aw-moe", model_a_);
  ServingEngine engine(&pool);
  RolloutOptions options;
  options.ramp_permille = {250, 1000};
  options.min_stage_requests = 10;
  options.max_p99_ratio = 50.0;
  options.p99_slack_ms = 500.0;
  RolloutController controller(&pool, engine.router(), &engine.stats(),
                               "aw-moe", options);
  controller.Begin(model_b_->Clone());

  RolloutReplayResult replay =
      ReplayRollout(&engine, &controller, *sessions_, /*max_rounds=*/64);
  EXPECT_EQ(replay.final_state, RolloutState::kPromoted);
  EXPECT_EQ(replay.candidate_version, 2);
  EXPECT_EQ(replay.final_stable_version, 2);
  ASSERT_GE(replay.rounds.size(), 2u);
  EXPECT_EQ(replay.rounds.front().split_permille, 250);
  EXPECT_EQ(replay.rounds.back().split_permille, 1000);
  EXPECT_GT(replay.total_candidate_requests, 0);
  EXPECT_LT(replay.total_candidate_requests, replay.total_requests);
  // The last round served everyone on the candidate.
  EXPECT_EQ(replay.rounds.back().stable_requests, 0);
  EXPECT_EQ(replay.rounds.back().candidate_requests,
            static_cast<int64_t>(sessions_->size()));
  EXPECT_NE(replay.rounds.back().decision.find("promoted"),
            std::string::npos);
}

}  // namespace
}  // namespace awmoe
