// Parameterized gradient verification: every composite expression used by
// the models must pass numerical gradient checks across a sweep of shapes.

#include <tuple>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "util/rng.h"

namespace awmoe {
namespace {

Var RandomVar(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, 0.7));
  }
  return Var(std::move(m), /*requires_grad=*/true);
}

using Shape = std::pair<int64_t, int64_t>;

class OpGradSweepTest : public ::testing::TestWithParam<Shape> {
 protected:
  void ExpectOk(const std::function<Var(const std::vector<Var>&)>& fn,
                std::vector<Var> inputs) {
    GradCheckResult result = CheckGradients(fn, std::move(inputs));
    EXPECT_TRUE(result.ok) << result.message;
  }
};

TEST_P(OpGradSweepTest, LinearLayerExpression) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 101 + cols);
  ExpectOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::Relu(ag::AddBias(
            ag::MatMul(in[0], in[1]), in[2])));
      },
      {RandomVar(rows, cols, &rng), RandomVar(cols, 3, &rng),
       RandomVar(1, 3, &rng)});
}

TEST_P(OpGradSweepTest, AttentionUnitExpression) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 103 + cols);
  // concat(u, r, u*r) -> weights -> weighted pooling.
  ExpectOk(
      [](const std::vector<Var>& in) {
        Var joined =
            ag::ConcatCols({in[0], in[1], ag::Mul(in[0], in[1])});
        Var w = ag::Sigmoid(ag::MatMul(joined, in[2]));
        return ag::MeanAll(ag::MulColBroadcast(in[0], w));
      },
      {RandomVar(rows, cols, &rng), RandomVar(rows, cols, &rng),
       RandomVar(3 * cols, 1, &rng)});
}

TEST_P(OpGradSweepTest, GateWeightedSum) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 107 + cols);
  // Eq. 9: dot of expert scores and gate activations.
  ExpectOk(
      [](const std::vector<Var>& in) {
        Matrix targets(in[0].rows(), 1);
        for (int64_t i = 0; i < targets.rows(); ++i) {
          targets(i, 0) = static_cast<float>(i % 2);
        }
        return ag::BceWithLogitsLoss(ag::DotRows(in[0], in[1]), targets);
      },
      {RandomVar(rows, cols, &rng), RandomVar(rows, cols, &rng)});
}

TEST_P(OpGradSweepTest, InfoNceExpression) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 109 + cols);
  ExpectOk(
      [](const std::vector<Var>& in) {
        return ag::InfoNceLoss(in[0], in[1], {in[2]});
      },
      {RandomVar(rows, cols, &rng), RandomVar(rows, cols, &rng),
       RandomVar(rows, cols, &rng)});
}

TEST_P(OpGradSweepTest, SoftmaxGateExpression) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 113 + cols);
  ExpectOk(
      [](const std::vector<Var>& in) {
        Var gate = ag::SoftmaxRows(in[0]);
        return ag::MeanAll(ag::DotRows(gate, in[1]));
      },
      {RandomVar(rows, cols, &rng), RandomVar(rows, cols, &rng)});
}

TEST_P(OpGradSweepTest, MaskedPoolingExpression) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 127 + cols);
  Matrix mask(rows, 1);
  for (int64_t i = 0; i < rows; ++i) mask(i, 0) = (i % 2 == 0) ? 1.0f : 0.0f;
  ExpectOk(
      [mask](const std::vector<Var>& in) {
        Var w = ag::MulMask(ag::Tanh(ag::DotRows(in[0], in[1])), mask);
        return ag::MeanAll(ag::MulColBroadcast(in[0], w));
      },
      {RandomVar(rows, cols, &rng), RandomVar(rows, cols, &rng)});
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpGradSweepTest,
                         ::testing::Values(Shape{2, 2}, Shape{3, 4},
                                           Shape{5, 3}, Shape{4, 6},
                                           Shape{7, 2}));

}  // namespace
}  // namespace awmoe
