#include "autograd/ops.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

Var RandomVar(int64_t rows, int64_t cols, Rng* rng, bool requires_grad) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal());
  }
  return Var(std::move(m), requires_grad);
}

TEST(OpsTest, MatMulForward) {
  Var a(Matrix::FromVector(2, 2, {1, 2, 3, 4}));
  Var b(Matrix::FromVector(2, 2, {5, 6, 7, 8}));
  Var c = ag::MatMul(a, b);
  EXPECT_TRUE(AllClose(c.value(),
                       Matrix::FromVector(2, 2, {19, 22, 43, 50}), 1e-6f));
}

TEST(OpsTest, MatMulBackwardShapes) {
  Rng rng(1);
  Var a = RandomVar(3, 4, &rng, true);
  Var b = RandomVar(4, 2, &rng, true);
  Var loss = ag::MeanAll(ag::MatMul(a, b));
  loss.Backward();
  EXPECT_TRUE(a.grad().SameShape(a.value()));
  EXPECT_TRUE(b.grad().SameShape(b.value()));
}

TEST(OpsTest, SigmoidForwardMidpoint) {
  Var a(Matrix::Full(1, 1, 0.0f));
  EXPECT_NEAR(ag::Sigmoid(a).value()(0, 0), 0.5f, 1e-6f);
}

TEST(OpsTest, ConcatColsForwardAndBackward) {
  Var a(Matrix::Full(2, 1, 1.0f), true);
  Var b(Matrix::Full(2, 2, 2.0f), true);
  Var c = ag::ConcatCols({a, b});
  EXPECT_EQ(c.cols(), 3);
  Var loss = ag::SumAll(c);
  loss.Backward();
  EXPECT_TRUE(AllClose(a.grad(), Matrix::Full(2, 1, 1.0f), 0.0f));
  EXPECT_TRUE(AllClose(b.grad(), Matrix::Full(2, 2, 1.0f), 0.0f));
}

TEST(OpsTest, GatherRowsBackwardScatters) {
  Var table(Matrix::FromVector(3, 2, {1, 1, 2, 2, 3, 3}), true);
  Var rows = ag::GatherRows(table, {0, 2, 2});
  Var loss = ag::SumAll(rows);
  loss.Backward();
  // Row 0 used once, row 1 never, row 2 twice.
  EXPECT_TRUE(AllClose(table.grad(),
                       Matrix::FromVector(3, 2, {1, 1, 0, 0, 2, 2}), 0.0f));
}

TEST(OpsTest, MulColBroadcastForward) {
  Var a(Matrix::FromVector(2, 2, {1, 2, 3, 4}));
  Var w(Matrix::ColVector({10, 0.5f}));
  Var out = ag::MulColBroadcast(a, w);
  EXPECT_TRUE(AllClose(out.value(),
                       Matrix::FromVector(2, 2, {10, 20, 1.5f, 2}), 1e-6f));
}

TEST(OpsTest, DotRowsForward) {
  Var a(Matrix::FromVector(2, 2, {1, 2, 3, 4}));
  Var b(Matrix::FromVector(2, 2, {1, 1, 1, 1}));
  EXPECT_TRUE(AllClose(ag::DotRows(a, b).value(),
                       Matrix::ColVector({3, 7}), 1e-6f));
}

TEST(OpsTest, SoftmaxRowsIsDistribution) {
  Rng rng(2);
  Var a = RandomVar(4, 5, &rng, false);
  Matrix s = ag::SoftmaxRows(a).value();
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0;
    for (int64_t c = 0; c < 5; ++c) total += s(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, StopGradientBlocksFlow) {
  Var a(Matrix::Full(1, 1, 2.0f), true);
  Var detached = ag::StopGradient(ag::Scale(a, 3.0f));
  EXPECT_FALSE(detached.requires_grad());
  Var out = ag::Mul(detached, detached);
  EXPECT_FALSE(out.requires_grad());
}

TEST(OpsTest, MulMaskZeroesAndPasses) {
  Var a(Matrix::FromVector(1, 4, {1, 2, 3, 4}), true);
  Matrix mask = Matrix::FromVector(1, 4, {1, 0, 1, 0});
  Var out = ag::MulMask(a, mask);
  EXPECT_TRUE(AllClose(out.value(),
                       Matrix::FromVector(1, 4, {1, 0, 3, 0}), 0.0f));
  ag::SumAll(out).Backward();
  EXPECT_TRUE(AllClose(a.grad(), mask, 0.0f));
}

TEST(OpsTest, BceWithLogitsMatchesNaive) {
  // Hand-check against -[t log(p) + (1-t) log(1-p)].
  Var logits(Matrix::ColVector({0.7f, -1.3f, 2.0f}), true);
  Matrix targets = Matrix::ColVector({1.0f, 0.0f, 1.0f});
  Var loss = ag::BceWithLogitsLoss(logits, targets);
  double expected = 0.0;
  for (int i = 0; i < 3; ++i) {
    double x = logits.value()(i, 0);
    double t = targets(i, 0);
    double p = 1.0 / (1.0 + std::exp(-x));
    expected += -(t * std::log(p) + (1 - t) * std::log(1 - p));
  }
  expected /= 3.0;
  EXPECT_NEAR(loss.value()(0, 0), expected, 1e-5f);
}

TEST(OpsTest, BceWithLogitsStableForExtremeLogits) {
  Var logits(Matrix::ColVector({80.0f, -80.0f}), true);
  Matrix targets = Matrix::ColVector({0.0f, 1.0f});
  Var loss = ag::BceWithLogitsLoss(logits, targets);
  EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
  loss.Backward();
  EXPECT_TRUE(std::isfinite(logits.grad()(0, 0)));
  // Gradient saturates at +-1/m.
  EXPECT_NEAR(logits.grad()(0, 0), 0.5f, 1e-4f);
  EXPECT_NEAR(logits.grad()(1, 0), -0.5f, 1e-4f);
}

TEST(OpsTest, BceGradientIsSigmoidMinusTarget) {
  Var logits(Matrix::ColVector({0.0f}), true);
  Matrix targets = Matrix::ColVector({1.0f});
  ag::BceWithLogitsLoss(logits, targets).Backward();
  EXPECT_NEAR(logits.grad()(0, 0), 0.5f - 1.0f, 1e-6f);
}

TEST(OpsTest, InfoNceDecreasesWhenPositiveCloser) {
  Rng rng(3);
  Var anchor = RandomVar(8, 4, &rng, false);
  // Positive identical to anchor; negatives random.
  Var positive(anchor.value());
  Var neg1 = RandomVar(8, 4, &rng, false);
  Var neg2 = RandomVar(8, 4, &rng, false);
  Var aligned = ag::InfoNceLoss(anchor, positive, {neg1, neg2});

  Var random_pos = RandomVar(8, 4, &rng, false);
  Var misaligned = ag::InfoNceLoss(anchor, random_pos, {neg1, neg2});
  EXPECT_LT(aligned.value()(0, 0), misaligned.value()(0, 0));
}

TEST(OpsTest, InfoNceWithNoNegativesIsZero) {
  // With only the positive in the denominator the loss is exactly zero.
  Rng rng(4);
  Var anchor = RandomVar(4, 3, &rng, false);
  Var positive(anchor.value());
  Var loss = ag::InfoNceLoss(anchor, positive, {});
  EXPECT_NEAR(loss.value()(0, 0), 0.0f, 1e-6f);
}

TEST(OpsTest, LogSumExpRowsForward) {
  Var a(Matrix::FromVector(1, 3, {1.0f, 2.0f, 3.0f}));
  float expected =
      std::log(std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f));
  EXPECT_NEAR(ag::LogSumExpRows(a).value()(0, 0), expected, 1e-5f);
}

/// Central-difference gradient check of `leaf` through `forward` (a
/// scalar-loss graph builder over the same leaf). Rebuilds the graph per
/// perturbation; `forward` must be pure in the leaf's current value.
void CheckGradFiniteDifference(Var leaf, const std::function<Var()>& forward,
                               float tol) {
  leaf.ZeroGrad();  // Backward accumulates; a prior check must not leak in.
  Var loss = forward();
  loss.Backward();
  ASSERT_TRUE(leaf.has_grad());
  const Matrix grad = leaf.grad();
  const float eps = 1e-2f;
  float* data = leaf.mutable_value().data();
  for (int64_t i = 0; i < leaf.value().size(); ++i) {
    const float orig = data[i];
    data[i] = orig + eps;
    const float up = forward().value()(0, 0);
    data[i] = orig - eps;
    const float down = forward().value()(0, 0);
    data[i] = orig;
    const float want = (up - down) / (2.0f * eps);
    EXPECT_NEAR(grad.data()[i], want, tol) << "entry " << i;
  }
}

TEST(OpsTest, MatMulNTForwardMatchesRowDots) {
  Rng rng(21);
  Var a = RandomVar(3, 4, &rng, false);
  Var b = RandomVar(5, 4, &rng, false);
  Matrix got = ag::MatMulNT(a, b).value();
  ASSERT_EQ(got.rows(), 3);
  ASSERT_EQ(got.cols(), 5);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      float want = 0.0f;
      for (int64_t p = 0; p < 4; ++p) {
        want += a.value()(i, p) * b.value()(j, p);
      }
      EXPECT_NEAR(got(i, j), want, 1e-5f);
    }
  }
}

TEST(OpsTest, MatMulNTBackwardFiniteDifference) {
  Rng rng(22);
  Var a = RandomVar(3, 4, &rng, true);
  Var b = RandomVar(5, 4, &rng, true);
  // Random fixed weights make the loss sensitive to every entry with a
  // distinct coefficient, so a transposed gradient cannot pass.
  Var w = RandomVar(3, 5, &rng, false);
  const auto forward = [&] { return ag::SumAll(ag::Mul(ag::MatMulNT(a, b), w)); };
  CheckGradFiniteDifference(a, forward, 5e-2f);
  CheckGradFiniteDifference(b, forward, 5e-2f);
}

TEST(OpsTest, MaskedSoftmaxRowsMatchesBlockSoftmaxBitwise) {
  // A row whose included columns form a contiguous block must equal
  // SoftmaxRows run on that block alone, bit for bit — the property the
  // listwise reranker's graph-vs-workspace equality rests on.
  Rng rng(23);
  Var a = RandomVar(2, 5, &rng, false);
  Matrix mask(2, 5);
  for (int64_t c = 1; c <= 3; ++c) mask(0, c) = 1.0f;  // Row 0: cols 1..3.
  for (int64_t c = 0; c <= 4; ++c) mask(1, c) = 1.0f;  // Row 1: all.
  Matrix got = ag::MaskedSoftmaxRows(a, mask).value();

  Matrix block0(1, 3);
  for (int64_t c = 0; c < 3; ++c) block0(0, c) = a.value()(0, c + 1);
  Matrix want0 = SoftmaxRows(block0);
  EXPECT_EQ(got(0, 0), 0.0f);
  EXPECT_EQ(got(0, 4), 0.0f);
  for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(got(0, c + 1), want0(0, c));

  Matrix row1(1, 5);
  for (int64_t c = 0; c < 5; ++c) row1(0, c) = a.value()(1, c);
  Matrix want1 = SoftmaxRows(row1);
  for (int64_t c = 0; c < 5; ++c) EXPECT_EQ(got(1, c), want1(0, c));
}

TEST(OpsTest, MaskedSoftmaxRowsBackwardFiniteDifference) {
  Rng rng(24);
  Var a = RandomVar(2, 4, &rng, true);
  Matrix mask(2, 4);
  for (int64_t c = 0; c <= 2; ++c) mask(0, c) = 1.0f;
  for (int64_t c = 1; c <= 3; ++c) mask(1, c) = 1.0f;
  Var w = RandomVar(2, 4, &rng, false);
  CheckGradFiniteDifference(
      a, [&] { return ag::SumAll(ag::Mul(ag::MaskedSoftmaxRows(a, mask), w)); },
      5e-2f);
}

TEST(OpsTest, ListwiseSoftmaxCrossEntropyValue) {
  // One slate of three, single positive at row 1: loss is -log p_1.
  Var logits(Matrix::FromVector(3, 1, {1.0f, 2.0f, 0.5f}));
  Matrix targets = Matrix::FromVector(3, 1, {0.0f, 1.0f, 0.0f});
  Var loss =
      ag::ListwiseSoftmaxCrossEntropy(logits, targets, {0});
  const double denom =
      std::exp(1.0 - 2.0) + std::exp(2.0 - 2.0) + std::exp(0.5 - 2.0);
  EXPECT_NEAR(loss.value()(0, 0), std::log(denom), 1e-5f);
}

TEST(OpsTest, ListwiseSoftmaxCrossEntropySkipsSlatesWithoutPositives) {
  // Second slate has no positive: it contributes neither loss nor count.
  Var logits(Matrix::FromVector(4, 1, {1.0f, 2.0f, 3.0f, -1.0f}));
  Matrix targets = Matrix::FromVector(4, 1, {0.0f, 1.0f, 0.0f, 0.0f});
  Var with_empty =
      ag::ListwiseSoftmaxCrossEntropy(logits, targets, {0, 2});
  Var first_only = ag::ListwiseSoftmaxCrossEntropy(
      Var(Matrix::FromVector(2, 1, {1.0f, 2.0f})),
      Matrix::FromVector(2, 1, {0.0f, 1.0f}), {0});
  EXPECT_NEAR(with_empty.value()(0, 0), first_only.value()(0, 0), 1e-6f);

  // No slate has a positive anywhere: the loss is exactly zero.
  Matrix all_negative(4, 1);
  Var empty_loss = ag::ListwiseSoftmaxCrossEntropy(
      Var(Matrix::FromVector(4, 1, {1.0f, 2.0f, 3.0f, -1.0f})), all_negative,
      {0, 2});
  EXPECT_EQ(empty_loss.value()(0, 0), 0.0f);
}

TEST(OpsTest, ListwiseSoftmaxCrossEntropyBackwardFiniteDifference) {
  Rng rng(25);
  Var logits = RandomVar(7, 1, &rng, true);
  Matrix targets = Matrix::FromVector(7, 1,
                                      {1.0f, 0.0f, 0.0f,    // Slate 0.
                                       0.0f, 1.0f, 1.0f, 0.0f});  // Slate 1.
  CheckGradFiniteDifference(
      logits,
      [&] { return ag::ListwiseSoftmaxCrossEntropy(logits, targets, {0, 3}); },
      5e-2f);
}

TEST(OpsTest, InferenceUnderNoGradBuildsNoGraph) {
  Rng rng(5);
  Var w = RandomVar(4, 4, &rng, true);
  Var x = RandomVar(2, 4, &rng, false);
  NoGradGuard guard;
  Var y = ag::Relu(ag::MatMul(x, w));
  EXPECT_EQ(y.NumParents(), 0u);
  EXPECT_FALSE(y.requires_grad());
}

}  // namespace
}  // namespace awmoe
