#include "autograd/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

Var RandomVar(int64_t rows, int64_t cols, Rng* rng, bool requires_grad) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal());
  }
  return Var(std::move(m), requires_grad);
}

TEST(OpsTest, MatMulForward) {
  Var a(Matrix::FromVector(2, 2, {1, 2, 3, 4}));
  Var b(Matrix::FromVector(2, 2, {5, 6, 7, 8}));
  Var c = ag::MatMul(a, b);
  EXPECT_TRUE(AllClose(c.value(),
                       Matrix::FromVector(2, 2, {19, 22, 43, 50}), 1e-6f));
}

TEST(OpsTest, MatMulBackwardShapes) {
  Rng rng(1);
  Var a = RandomVar(3, 4, &rng, true);
  Var b = RandomVar(4, 2, &rng, true);
  Var loss = ag::MeanAll(ag::MatMul(a, b));
  loss.Backward();
  EXPECT_TRUE(a.grad().SameShape(a.value()));
  EXPECT_TRUE(b.grad().SameShape(b.value()));
}

TEST(OpsTest, SigmoidForwardMidpoint) {
  Var a(Matrix::Full(1, 1, 0.0f));
  EXPECT_NEAR(ag::Sigmoid(a).value()(0, 0), 0.5f, 1e-6f);
}

TEST(OpsTest, ConcatColsForwardAndBackward) {
  Var a(Matrix::Full(2, 1, 1.0f), true);
  Var b(Matrix::Full(2, 2, 2.0f), true);
  Var c = ag::ConcatCols({a, b});
  EXPECT_EQ(c.cols(), 3);
  Var loss = ag::SumAll(c);
  loss.Backward();
  EXPECT_TRUE(AllClose(a.grad(), Matrix::Full(2, 1, 1.0f), 0.0f));
  EXPECT_TRUE(AllClose(b.grad(), Matrix::Full(2, 2, 1.0f), 0.0f));
}

TEST(OpsTest, GatherRowsBackwardScatters) {
  Var table(Matrix::FromVector(3, 2, {1, 1, 2, 2, 3, 3}), true);
  Var rows = ag::GatherRows(table, {0, 2, 2});
  Var loss = ag::SumAll(rows);
  loss.Backward();
  // Row 0 used once, row 1 never, row 2 twice.
  EXPECT_TRUE(AllClose(table.grad(),
                       Matrix::FromVector(3, 2, {1, 1, 0, 0, 2, 2}), 0.0f));
}

TEST(OpsTest, MulColBroadcastForward) {
  Var a(Matrix::FromVector(2, 2, {1, 2, 3, 4}));
  Var w(Matrix::ColVector({10, 0.5f}));
  Var out = ag::MulColBroadcast(a, w);
  EXPECT_TRUE(AllClose(out.value(),
                       Matrix::FromVector(2, 2, {10, 20, 1.5f, 2}), 1e-6f));
}

TEST(OpsTest, DotRowsForward) {
  Var a(Matrix::FromVector(2, 2, {1, 2, 3, 4}));
  Var b(Matrix::FromVector(2, 2, {1, 1, 1, 1}));
  EXPECT_TRUE(AllClose(ag::DotRows(a, b).value(),
                       Matrix::ColVector({3, 7}), 1e-6f));
}

TEST(OpsTest, SoftmaxRowsIsDistribution) {
  Rng rng(2);
  Var a = RandomVar(4, 5, &rng, false);
  Matrix s = ag::SoftmaxRows(a).value();
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0;
    for (int64_t c = 0; c < 5; ++c) total += s(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, StopGradientBlocksFlow) {
  Var a(Matrix::Full(1, 1, 2.0f), true);
  Var detached = ag::StopGradient(ag::Scale(a, 3.0f));
  EXPECT_FALSE(detached.requires_grad());
  Var out = ag::Mul(detached, detached);
  EXPECT_FALSE(out.requires_grad());
}

TEST(OpsTest, MulMaskZeroesAndPasses) {
  Var a(Matrix::FromVector(1, 4, {1, 2, 3, 4}), true);
  Matrix mask = Matrix::FromVector(1, 4, {1, 0, 1, 0});
  Var out = ag::MulMask(a, mask);
  EXPECT_TRUE(AllClose(out.value(),
                       Matrix::FromVector(1, 4, {1, 0, 3, 0}), 0.0f));
  ag::SumAll(out).Backward();
  EXPECT_TRUE(AllClose(a.grad(), mask, 0.0f));
}

TEST(OpsTest, BceWithLogitsMatchesNaive) {
  // Hand-check against -[t log(p) + (1-t) log(1-p)].
  Var logits(Matrix::ColVector({0.7f, -1.3f, 2.0f}), true);
  Matrix targets = Matrix::ColVector({1.0f, 0.0f, 1.0f});
  Var loss = ag::BceWithLogitsLoss(logits, targets);
  double expected = 0.0;
  for (int i = 0; i < 3; ++i) {
    double x = logits.value()(i, 0);
    double t = targets(i, 0);
    double p = 1.0 / (1.0 + std::exp(-x));
    expected += -(t * std::log(p) + (1 - t) * std::log(1 - p));
  }
  expected /= 3.0;
  EXPECT_NEAR(loss.value()(0, 0), expected, 1e-5f);
}

TEST(OpsTest, BceWithLogitsStableForExtremeLogits) {
  Var logits(Matrix::ColVector({80.0f, -80.0f}), true);
  Matrix targets = Matrix::ColVector({0.0f, 1.0f});
  Var loss = ag::BceWithLogitsLoss(logits, targets);
  EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
  loss.Backward();
  EXPECT_TRUE(std::isfinite(logits.grad()(0, 0)));
  // Gradient saturates at +-1/m.
  EXPECT_NEAR(logits.grad()(0, 0), 0.5f, 1e-4f);
  EXPECT_NEAR(logits.grad()(1, 0), -0.5f, 1e-4f);
}

TEST(OpsTest, BceGradientIsSigmoidMinusTarget) {
  Var logits(Matrix::ColVector({0.0f}), true);
  Matrix targets = Matrix::ColVector({1.0f});
  ag::BceWithLogitsLoss(logits, targets).Backward();
  EXPECT_NEAR(logits.grad()(0, 0), 0.5f - 1.0f, 1e-6f);
}

TEST(OpsTest, InfoNceDecreasesWhenPositiveCloser) {
  Rng rng(3);
  Var anchor = RandomVar(8, 4, &rng, false);
  // Positive identical to anchor; negatives random.
  Var positive(anchor.value());
  Var neg1 = RandomVar(8, 4, &rng, false);
  Var neg2 = RandomVar(8, 4, &rng, false);
  Var aligned = ag::InfoNceLoss(anchor, positive, {neg1, neg2});

  Var random_pos = RandomVar(8, 4, &rng, false);
  Var misaligned = ag::InfoNceLoss(anchor, random_pos, {neg1, neg2});
  EXPECT_LT(aligned.value()(0, 0), misaligned.value()(0, 0));
}

TEST(OpsTest, InfoNceWithNoNegativesIsZero) {
  // With only the positive in the denominator the loss is exactly zero.
  Rng rng(4);
  Var anchor = RandomVar(4, 3, &rng, false);
  Var positive(anchor.value());
  Var loss = ag::InfoNceLoss(anchor, positive, {});
  EXPECT_NEAR(loss.value()(0, 0), 0.0f, 1e-6f);
}

TEST(OpsTest, LogSumExpRowsForward) {
  Var a(Matrix::FromVector(1, 3, {1.0f, 2.0f, 3.0f}));
  float expected =
      std::log(std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f));
  EXPECT_NEAR(ag::LogSumExpRows(a).value()(0, 0), expected, 1e-5f);
}

TEST(OpsTest, InferenceUnderNoGradBuildsNoGraph) {
  Rng rng(5);
  Var w = RandomVar(4, 4, &rng, true);
  Var x = RandomVar(2, 4, &rng, false);
  NoGradGuard guard;
  Var y = ag::Relu(ag::MatMul(x, w));
  EXPECT_EQ(y.NumParents(), 0u);
  EXPECT_FALSE(y.requires_grad());
}

}  // namespace
}  // namespace awmoe
