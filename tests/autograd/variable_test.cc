#include "autograd/variable.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "mat/kernels.h"

namespace awmoe {
namespace {

TEST(VariableTest, DefaultUndefined) {
  Var v;
  EXPECT_FALSE(v.defined());
}

TEST(VariableTest, LeafHoldsValue) {
  Var v(Matrix::Full(2, 2, 1.5f));
  EXPECT_TRUE(v.defined());
  EXPECT_EQ(v.rows(), 2);
  EXPECT_EQ(v.cols(), 2);
  EXPECT_EQ(v.value()(0, 0), 1.5f);
  EXPECT_FALSE(v.requires_grad());
  EXPECT_EQ(v.NumParents(), 0u);
  EXPECT_STREQ(v.OpName(), "leaf");
}

TEST(VariableTest, CopyAliasesSameNode) {
  Var a(Matrix::Full(1, 1, 1.0f), /*requires_grad=*/true);
  Var b = a;
  b.mutable_value()(0, 0) = 9.0f;
  EXPECT_EQ(a.value()(0, 0), 9.0f);
}

TEST(VariableTest, BackwardOnScalarSeedsGradOne) {
  Var a(Matrix::Full(1, 1, 3.0f), /*requires_grad=*/true);
  Var out = ag::Scale(a, 2.0f);
  out.Backward();
  ASSERT_TRUE(a.has_grad());
  EXPECT_FLOAT_EQ(a.grad()(0, 0), 2.0f);
}

TEST(VariableTest, GradAccumulatesAcrossUses) {
  // out = a + a: grad should be 2.
  Var a(Matrix::Full(1, 1, 1.0f), /*requires_grad=*/true);
  Var out = ag::Add(a, a);
  out.Backward();
  EXPECT_FLOAT_EQ(a.grad()(0, 0), 2.0f);
}

TEST(VariableTest, DiamondGraphAccumulatesOnce) {
  // out = (a*a) + (a*a) computed through shared intermediate.
  Var a(Matrix::Full(1, 1, 3.0f), /*requires_grad=*/true);
  Var sq = ag::Mul(a, a);
  Var out = ag::Add(sq, sq);
  out.Backward();
  // d/da (2 a^2) = 4a = 12.
  EXPECT_FLOAT_EQ(a.grad()(0, 0), 12.0f);
}

TEST(VariableTest, ZeroGradClears) {
  Var a(Matrix::Full(1, 1, 1.0f), /*requires_grad=*/true);
  Var out = ag::Scale(a, 3.0f);
  out.Backward();
  EXPECT_TRUE(a.has_grad());
  a.ZeroGrad();
  EXPECT_FALSE(a.has_grad());
}

TEST(VariableTest, SecondBackwardAccumulates) {
  Var a(Matrix::Full(1, 1, 1.0f), /*requires_grad=*/true);
  Var out1 = ag::Scale(a, 3.0f);
  out1.Backward();
  Var out2 = ag::Scale(a, 4.0f);
  out2.Backward();
  EXPECT_FLOAT_EQ(a.grad()(0, 0), 7.0f);
}

TEST(VariableTest, NoGradLeafGetsNoGradient) {
  Var a(Matrix::Full(1, 1, 2.0f), /*requires_grad=*/true);
  Var constant(Matrix::Full(1, 1, 5.0f));
  Var out = ag::Mul(a, constant);
  out.Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_FALSE(constant.has_grad());
  EXPECT_FLOAT_EQ(a.grad()(0, 0), 5.0f);
}

TEST(VariableTest, NoGradGuardDetachesResults) {
  Var a(Matrix::Full(1, 1, 2.0f), /*requires_grad=*/true);
  {
    NoGradGuard guard;
    EXPECT_TRUE(NoGradGuard::Active());
    Var out = ag::Scale(a, 2.0f);
    EXPECT_FALSE(out.requires_grad());
    EXPECT_EQ(out.NumParents(), 0u);
  }
  EXPECT_FALSE(NoGradGuard::Active());
  Var out = ag::Scale(a, 2.0f);
  EXPECT_TRUE(out.requires_grad());
}

TEST(VariableTest, NoGradGuardNests) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_TRUE(NoGradGuard::Active());
  }
  EXPECT_TRUE(NoGradGuard::Active());
}

TEST(VariableTest, DeepChainBackward) {
  // 60-op chain exercises the iterative DFS (no recursion limits).
  Var a(Matrix::Full(1, 1, 1.0f), /*requires_grad=*/true);
  Var h = a;
  for (int i = 0; i < 60; ++i) h = ag::Scale(h, 1.01f);
  h.Backward();
  float expected = std::pow(1.01f, 60.0f);
  EXPECT_NEAR(a.grad()(0, 0), expected, 1e-3f);
}

TEST(VariableDeathTest, BackwardRequiresScalar) {
  Var a(Matrix::Full(2, 2, 1.0f), /*requires_grad=*/true);
  Var out = ag::Scale(a, 2.0f);
  EXPECT_DEATH(out.Backward(), "scalar");
}

TEST(VariableDeathTest, GradWithoutBackwardChecks) {
  Var a(Matrix::Full(1, 1, 1.0f), /*requires_grad=*/true);
  EXPECT_DEATH(a.grad(), "no gradient");
}

}  // namespace
}  // namespace awmoe
