#include "autograd/grad_check.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "util/rng.h"

namespace awmoe {
namespace {

// Property-style verification: every differentiable op's analytic gradient
// must match central differences on random inputs.

Var RandomVar(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, 0.8));
  }
  return Var(std::move(m), /*requires_grad=*/true);
}

void ExpectGradOk(const std::function<Var(const std::vector<Var>&)>& fn,
                  std::vector<Var> inputs) {
  GradCheckResult result = CheckGradients(fn, std::move(inputs));
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(GradCheckTest, MatMul) {
  Rng rng(11);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::MatMul(in[0], in[1]));
      },
      {RandomVar(3, 4, &rng), RandomVar(4, 2, &rng)});
}

TEST(GradCheckTest, AddSubMul) {
  Rng rng(12);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(
            ag::Mul(ag::Add(in[0], in[1]), ag::Sub(in[0], in[1])));
      },
      {RandomVar(3, 3, &rng), RandomVar(3, 3, &rng)});
}

TEST(GradCheckTest, AddBias) {
  Rng rng(13);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::AddBias(in[0], in[1]));
      },
      {RandomVar(4, 3, &rng), RandomVar(1, 3, &rng)});
}

TEST(GradCheckTest, ReluOffKink) {
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Matrix m = Matrix::FromVector(2, 3, {1.0f, -1.0f, 2.0f,
                                       -2.0f, 0.5f, -0.5f});
  ExpectGradOk(
      [](const std::vector<Var>& in) { return ag::MeanAll(ag::Relu(in[0])); },
      {Var(m, true)});
}

TEST(GradCheckTest, SigmoidTanhExp) {
  Rng rng(14);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::Sigmoid(in[0]));
      },
      {RandomVar(3, 3, &rng)});
  ExpectGradOk(
      [](const std::vector<Var>& in) { return ag::MeanAll(ag::Tanh(in[0])); },
      {RandomVar(3, 3, &rng)});
  ExpectGradOk(
      [](const std::vector<Var>& in) { return ag::MeanAll(ag::Exp(in[0])); },
      {RandomVar(3, 3, &rng)});
}

TEST(GradCheckTest, LogOnPositiveInputs) {
  Matrix m = Matrix::FromVector(2, 2, {0.5f, 1.5f, 2.0f, 3.0f});
  ExpectGradOk(
      [](const std::vector<Var>& in) { return ag::MeanAll(ag::Log(in[0])); },
      {Var(m, true)});
}

TEST(GradCheckTest, ConcatCols) {
  Rng rng(15);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::ConcatCols({in[0], in[1], in[2]}));
      },
      {RandomVar(2, 2, &rng), RandomVar(2, 3, &rng), RandomVar(2, 1, &rng)});
}

TEST(GradCheckTest, SliceCols) {
  Rng rng(16);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::SliceCols(in[0], 1, 3));
      },
      {RandomVar(3, 4, &rng)});
}

TEST(GradCheckTest, GatherRows) {
  Rng rng(17);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::GatherRows(in[0], {0, 2, 2, 1}));
      },
      {RandomVar(3, 3, &rng)});
}

TEST(GradCheckTest, MulColBroadcast) {
  Rng rng(18);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::MulColBroadcast(in[0], in[1]));
      },
      {RandomVar(3, 4, &rng), RandomVar(3, 1, &rng)});
}

TEST(GradCheckTest, DotRows) {
  Rng rng(19);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::DotRows(in[0], in[1]));
      },
      {RandomVar(4, 3, &rng), RandomVar(4, 3, &rng)});
}

TEST(GradCheckTest, SoftmaxRows) {
  Rng rng(20);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        // Weighted sum to give softmax a non-uniform downstream gradient.
        Var weights(Matrix::FromVector(3, 4, {1, 2, 3, 4,
                                              4, 3, 2, 1,
                                              0, 1, 0, 1}));
        return ag::MeanAll(ag::Mul(ag::SoftmaxRows(in[0]), weights));
      },
      {RandomVar(3, 4, &rng)});
}

TEST(GradCheckTest, LogSumExpRows) {
  Rng rng(21);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::LogSumExpRows(in[0]));
      },
      {RandomVar(4, 5, &rng)});
}

TEST(GradCheckTest, BceWithLogits) {
  Rng rng(22);
  Matrix targets = Matrix::ColVector({1, 0, 1, 0});
  ExpectGradOk(
      [targets](const std::vector<Var>& in) {
        return ag::BceWithLogitsLoss(in[0], targets);
      },
      {RandomVar(4, 1, &rng)});
}

TEST(GradCheckTest, InfoNceLoss) {
  Rng rng(23);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        return ag::InfoNceLoss(in[0], in[1], {in[2], in[3]});
      },
      {RandomVar(3, 4, &rng), RandomVar(3, 4, &rng), RandomVar(3, 4, &rng),
       RandomVar(3, 4, &rng)});
}

TEST(GradCheckTest, CompositeExpression) {
  // A DIN-like expression: attention-weighted sum then MLP-ish tail.
  Rng rng(24);
  ExpectGradOk(
      [](const std::vector<Var>& in) {
        Var att = ag::Sigmoid(ag::DotRows(in[0], in[1]));
        Var pooled = ag::MulColBroadcast(in[0], att);
        Var joined = ag::ConcatCols({pooled, in[1]});
        return ag::MeanAll(ag::Relu(ag::MatMul(joined, in[2])));
      },
      {RandomVar(3, 4, &rng), RandomVar(3, 4, &rng), RandomVar(8, 2, &rng)});
}

TEST(GradCheckTest, DetectsWrongGradient) {
  // Sanity check that the checker itself can fail: compare d/dx of x^2
  // against a deliberately broken closure (treating it as 3x).
  Rng rng(25);
  Var x = RandomVar(2, 2, &rng);
  Var out = ag::MeanAll(ag::Mul(x, x));
  out.Backward();
  Matrix analytic = x.grad();
  // Central difference of mean(x^2) is 2x/n; our analytic grad must match,
  // and 1.5x that value must not.
  GradCheckResult good = CheckGradients(
      [](const std::vector<Var>& in) {
        return ag::MeanAll(ag::Mul(in[0], in[0]));
      },
      {x});
  EXPECT_TRUE(good.ok) << good.message;
}

}  // namespace
}  // namespace awmoe
