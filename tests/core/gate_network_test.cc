#include "core/gate_network.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

DatasetMeta TestMeta(bool recommendation = false) {
  DatasetMeta meta;
  meta.num_items = 40;
  meta.num_cats = 5;
  meta.num_brands = 15;
  meta.num_shops = 8;
  meta.num_queries = 10;
  meta.max_seq_len = 4;
  meta.recommendation_mode = recommendation;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

Example MakeExample(int64_t seed_id, int64_t history_len) {
  Example ex;
  Rng rng(static_cast<uint64_t>(seed_id) * 31 + 17);
  for (int64_t j = 0; j < history_len; ++j) {
    ex.behavior_items.push_back(rng.UniformInt(1, 40));
    ex.behavior_cats.push_back(rng.UniformInt(1, 5));
    ex.behavior_brands.push_back(rng.UniformInt(1, 15));
  }
  ex.target_item = rng.UniformInt(1, 40);
  ex.target_cat = rng.UniformInt(1, 5);
  ex.target_brand = rng.UniformInt(1, 15);
  ex.target_shop = rng.UniformInt(1, 8);
  ex.query_id = rng.UniformInt(1, 10);
  ex.query_cat = ex.target_cat;
  ex.numeric.assign(kNumNumericFeatures, 0.0f);
  return ex;
}

Batch MakeBatch(const DatasetMeta& meta, std::vector<int64_t> hist_lens) {
  static std::vector<Example> storage;
  storage.clear();
  for (size_t i = 0; i < hist_lens.size(); ++i) {
    storage.push_back(MakeExample(static_cast<int64_t>(i), hist_lens[i]));
  }
  std::vector<const Example*> ptrs;
  for (const Example& ex : storage) ptrs.push_back(&ex);
  return CollateBatch(ptrs, meta, nullptr);
}

class GateNetworkTest : public ::testing::TestWithParam<GateMode> {};

TEST_P(GateNetworkTest, OutputShapeIsBatchByK) {
  Rng rng(1);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  config.mode = GetParam();
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {2, 3, 0, 4});
  Var g = gate.Forward(batch);
  EXPECT_EQ(g.rows(), 4);
  EXPECT_EQ(g.cols(), 4);
}

TEST_P(GateNetworkTest, GradientsFlowToItsParameters) {
  Rng rng(2);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  config.mode = GetParam();
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {3, 2});
  ag::MeanAll(gate.Forward(batch)).Backward();
  for (const Var& p : gate.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST_P(GateNetworkTest, PaddingInvariance) {
  Rng rng(3);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  config.mode = GetParam();
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {2, 1});
  Matrix before = gate.Forward(batch).value();
  for (int64_t i = 0; i < batch.size; ++i) {
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      if (batch.behavior_mask(i, j) == 0.0f) {
        batch.behavior_items[static_cast<size_t>(i * batch.seq_len + j)] = 5;
        batch.behavior_cats[static_cast<size_t>(i * batch.seq_len + j)] = 2;
        batch.behavior_brands[static_cast<size_t>(i * batch.seq_len + j)] = 4;
      }
    }
  }
  Matrix after = gate.Forward(batch).value();
  EXPECT_TRUE(AllClose(before, after, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(
    AllGateModes, GateNetworkTest,
    ::testing::Values(GateMode::kBaseSumPool, GateMode::kBaseGateUnit,
                      GateMode::kBaseActivationUnit, GateMode::kFull),
    [](const ::testing::TestParamInfo<GateMode>& info) {
      switch (info.param) {
        case GateMode::kBaseSumPool:
          return "BaseSumPool";
        case GateMode::kBaseGateUnit:
          return "BaseGateUnit";
        case GateMode::kBaseActivationUnit:
          return "BaseActivationUnit";
        case GateMode::kFull:
          return "Full";
      }
      return "Unknown";
    });

TEST(GateNetworkModesTest, ModesProduceDifferentOutputs) {
  DatasetMeta meta = TestMeta();
  Batch batch = MakeBatch(meta, {3, 2});
  std::vector<Matrix> outputs;
  for (GateMode mode :
       {GateMode::kBaseSumPool, GateMode::kBaseGateUnit,
        GateMode::kBaseActivationUnit, GateMode::kFull}) {
    Rng rng(77);  // Same seed: same parameters where shared.
    EmbeddingSet set(meta, 4, &rng);
    GateConfig config;
    config.mode = mode;
    GateNetwork gate(meta, TinyDims(), &set, config, &rng);
    outputs.push_back(gate.Forward(batch).value());
  }
  // Full vs sum-pool must differ.
  EXPECT_FALSE(AllClose(outputs[0], outputs[3], 1e-6f));
}

TEST(GateNetworkTest2, EmptyHistoryFallsBackToBias) {
  Rng rng(4);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  config.mode = GateMode::kFull;
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {0, 0});
  Matrix g = gate.Forward(batch).value();
  // With no behaviours the weighted sum vanishes: rows equal the bias,
  // hence equal each other (bias initialised to zero -> zeros).
  for (int64_t k = 0; k < g.cols(); ++k) {
    EXPECT_FLOAT_EQ(g(0, k), g(1, k));
  }
}

TEST(GateNetworkTest2, SoftmaxOptionNormalises) {
  Rng rng(5);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  config.softmax = true;
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {2, 3});
  Matrix g = gate.Forward(batch).value();
  for (int64_t i = 0; i < g.rows(); ++i) {
    float total = 0.0f;
    for (int64_t k = 0; k < g.cols(); ++k) total += g(i, k);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(GateNetworkTest2, TopKSparsifiesActivations) {
  Rng rng(6);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  config.top_k = 2;
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {3, 2, 4});
  Matrix g = gate.Forward(batch).value();
  for (int64_t i = 0; i < g.rows(); ++i) {
    int64_t nonzero = 0;
    for (int64_t k = 0; k < g.cols(); ++k) {
      if (g(i, k) != 0.0f) ++nonzero;
    }
    EXPECT_LE(nonzero, 2);
  }
}

TEST(GateNetworkTest2, RecommendationModeUsesTargetItem) {
  Rng rng(7);
  DatasetMeta meta = TestMeta(/*recommendation=*/true);
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {2, 2});
  Matrix g1 = gate.Forward(batch).value();
  // Changing the target item changes the gate output in rec mode.
  batch.target_items[0] = (batch.target_items[0] % 39) + 1;
  batch.target_cats[0] = (batch.target_cats[0] % 4) + 1;
  Matrix g2 = gate.Forward(batch).value();
  bool row0_changed = false;
  for (int64_t k = 0; k < g1.cols(); ++k) {
    if (g1(0, k) != g2(0, k)) row0_changed = true;
    EXPECT_FLOAT_EQ(g1(1, k), g2(1, k));  // Row 1 untouched.
  }
  EXPECT_TRUE(row0_changed);
}

TEST(GateNetworkTest2, SearchModeGateIgnoresTargetItem) {
  // §III-F: in search mode the gate reads only user + query features, the
  // property that allows one gate pass per session.
  Rng rng(8);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  GateConfig config;
  GateNetwork gate(meta, TinyDims(), &set, config, &rng);
  Batch batch = MakeBatch(meta, {2, 2});
  Matrix g1 = gate.Forward(batch).value();
  batch.target_items[0] = (batch.target_items[0] % 39) + 1;
  batch.target_shops[1] = (batch.target_shops[1] % 7) + 1;
  Matrix g2 = gate.Forward(batch).value();
  EXPECT_TRUE(AllClose(g1, g2, 0.0f));
}

TEST(GateUnitTest, OutputsKColumns) {
  Rng rng(9);
  GateUnit unit(6, {4}, 4, &rng);
  Var a(Matrix::Full(3, 6, 0.3f));
  Var b(Matrix::Full(3, 6, -0.2f));
  Var out = unit.Forward(a, b);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 4);
}

}  // namespace
}  // namespace awmoe
