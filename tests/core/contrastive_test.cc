#include "core/contrastive.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "util/rng.h"

namespace awmoe {
namespace {

DatasetMeta TestMeta() {
  DatasetMeta meta;
  meta.num_items = 40;
  meta.num_cats = 5;
  meta.num_brands = 15;
  meta.num_shops = 8;
  meta.num_queries = 10;
  meta.max_seq_len = 6;
  return meta;
}

Batch MakeBatch(int64_t size, int64_t hist_len) {
  static std::vector<Example> storage;
  storage.clear();
  for (int64_t i = 0; i < size; ++i) {
    Example ex;
    for (int64_t j = 0; j < hist_len; ++j) {
      ex.behavior_items.push_back(1 + (i * 7 + j) % 39);
      ex.behavior_cats.push_back(1 + j % 4);
      ex.behavior_brands.push_back(1 + j % 14);
    }
    ex.target_item = 1 + i % 39;
    ex.target_cat = 1;
    ex.target_brand = 1;
    ex.target_shop = 1;
    ex.query_id = 1;
    ex.query_cat = 1;
    ex.numeric.assign(kNumNumericFeatures, 0.0f);
    storage.push_back(std::move(ex));
  }
  std::vector<const Example*> ptrs;
  for (const Example& ex : storage) ptrs.push_back(&ex);
  return CollateBatch(ptrs, TestMeta(), nullptr);
}

TEST(ContrastiveAugmenterTest, MaskProbabilityZeroIsIdentity) {
  Rng rng(1);
  ContrastiveConfig config;
  config.mask_prob = 0.0;
  ContrastiveAugmenter augmenter(config, &rng);
  Batch batch = MakeBatch(4, 5);
  Batch augmented = augmenter.Augment(batch);
  EXPECT_EQ(augmented.behavior_items, batch.behavior_items);
  for (int64_t i = 0; i < batch.size; ++i) {
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      EXPECT_EQ(augmented.behavior_mask(i, j), batch.behavior_mask(i, j));
    }
  }
}

TEST(ContrastiveAugmenterTest, MaskProbabilityOneMasksEverything) {
  Rng rng(2);
  ContrastiveConfig config;
  config.mask_prob = 1.0;
  ContrastiveAugmenter augmenter(config, &rng);
  Batch batch = MakeBatch(3, 4);
  Batch augmented = augmenter.Augment(batch);
  for (int64_t i = 0; i < batch.size; ++i) {
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      EXPECT_EQ(augmented.behavior_mask(i, j), 0.0f);
      EXPECT_EQ(augmented.behavior_items[static_cast<size_t>(
                    i * batch.seq_len + j)],
                0);
    }
  }
}

TEST(ContrastiveAugmenterTest, MaskRateApproximatesP) {
  Rng rng(3);
  ContrastiveConfig config;
  config.mask_prob = 0.3;
  ContrastiveAugmenter augmenter(config, &rng);
  int64_t masked = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Batch batch = MakeBatch(8, 6);
    Batch augmented = augmenter.Augment(batch);
    for (int64_t i = 0; i < batch.size; ++i) {
      for (int64_t j = 0; j < batch.seq_len; ++j) {
        if (batch.behavior_mask(i, j) > 0.0f) {
          ++total;
          if (augmented.behavior_mask(i, j) == 0.0f) ++masked;
        }
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(masked) / total, 0.3, 0.03);
}

TEST(ContrastiveAugmenterTest, OriginalBatchUntouched) {
  Rng rng(4);
  ContrastiveConfig config;
  config.mask_prob = 0.5;
  ContrastiveAugmenter augmenter(config, &rng);
  Batch batch = MakeBatch(4, 5);
  std::vector<int64_t> items_before = batch.behavior_items;
  augmenter.Augment(batch);
  EXPECT_EQ(batch.behavior_items, items_before);
}

TEST(ContrastiveAugmenterTest, ReorderKeepsItemMultiset) {
  Rng rng(5);
  ContrastiveConfig config;
  config.mask_prob = 0.0;
  config.strategy = ContrastiveConfig::Strategy::kMaskAndReorder;
  ContrastiveAugmenter augmenter(config, &rng);
  Batch batch = MakeBatch(5, 6);
  Batch augmented = augmenter.Augment(batch);
  for (int64_t i = 0; i < batch.size; ++i) {
    std::multiset<int64_t> before, after;
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      before.insert(
          batch.behavior_items[static_cast<size_t>(i * batch.seq_len + j)]);
      after.insert(augmented.behavior_items[static_cast<size_t>(
          i * batch.seq_len + j)]);
    }
    EXPECT_EQ(before, after);
  }
}

TEST(ContrastiveAugmenterTest, ReorderActuallyPermutes) {
  Rng rng(6);
  ContrastiveConfig config;
  config.mask_prob = 0.0;
  config.strategy = ContrastiveConfig::Strategy::kMaskAndReorder;
  ContrastiveAugmenter augmenter(config, &rng);
  int changed = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Batch batch = MakeBatch(4, 6);
    Batch augmented = augmenter.Augment(batch);
    if (augmented.behavior_items != batch.behavior_items) ++changed;
  }
  EXPECT_GT(changed, 10);
}

TEST(ContrastiveAugmenterTest, NegativesExcludeSelf) {
  Rng rng(7);
  ContrastiveConfig config;
  config.num_negatives = 3;
  ContrastiveAugmenter augmenter(config, &rng);
  auto negatives = augmenter.SampleNegatives(16);
  ASSERT_EQ(negatives.size(), 3u);
  for (const auto& column : negatives) {
    ASSERT_EQ(column.size(), 16u);
    for (int64_t i = 0; i < 16; ++i) {
      EXPECT_NE(column[static_cast<size_t>(i)], i);
      EXPECT_GE(column[static_cast<size_t>(i)], 0);
      EXPECT_LT(column[static_cast<size_t>(i)], 16);
    }
  }
}

TEST(ContrastiveAugmenterTest, SingleRowBatchNegativesDegrade) {
  Rng rng(8);
  ContrastiveConfig config;
  config.num_negatives = 2;
  ContrastiveAugmenter augmenter(config, &rng);
  auto negatives = augmenter.SampleNegatives(1);
  for (const auto& column : negatives) {
    EXPECT_EQ(column[0], 0);  // Self is the only option.
  }
}

TEST(ContrastiveConfigTest, PaperDefaults) {
  ContrastiveConfig config;
  EXPECT_DOUBLE_EQ(config.mask_prob, 0.1);
  EXPECT_EQ(config.num_negatives, 3);
  EXPECT_DOUBLE_EQ(config.weight, 0.05);
}

}  // namespace
}  // namespace awmoe
