#include "core/aw_moe.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/batcher.h"
#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

DatasetMeta TestMeta(bool recommendation = false) {
  DatasetMeta meta;
  meta.num_items = 40;
  meta.num_cats = 5;
  meta.num_brands = 15;
  meta.num_shops = 8;
  meta.num_queries = 10;
  meta.max_seq_len = 4;
  meta.recommendation_mode = recommendation;
  return meta;
}

AwMoeConfig TinyConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  config.dims.num_experts = 4;
  return config;
}

Example MakeExample(int64_t seed_id, int64_t history_len) {
  Example ex;
  Rng rng(static_cast<uint64_t>(seed_id) * 131 + 7);
  for (int64_t j = 0; j < history_len; ++j) {
    ex.behavior_items.push_back(rng.UniformInt(1, 40));
    ex.behavior_cats.push_back(rng.UniformInt(1, 5));
    ex.behavior_brands.push_back(rng.UniformInt(1, 15));
  }
  ex.target_item = rng.UniformInt(1, 40);
  ex.target_cat = rng.UniformInt(1, 5);
  ex.target_brand = rng.UniformInt(1, 15);
  ex.target_shop = rng.UniformInt(1, 8);
  ex.query_id = rng.UniformInt(1, 10);
  ex.query_cat = ex.target_cat;
  ex.label = seed_id % 2 == 0 ? 1.0f : 0.0f;
  ex.numeric.assign(kNumNumericFeatures, 0.05f);
  return ex;
}

Batch MakeBatch(const DatasetMeta& meta, std::vector<int64_t> hist_lens) {
  static std::vector<Example> storage;
  storage.clear();
  for (size_t i = 0; i < hist_lens.size(); ++i) {
    storage.push_back(MakeExample(static_cast<int64_t>(i), hist_lens[i]));
  }
  std::vector<const Example*> ptrs;
  for (const Example& ex : storage) ptrs.push_back(&ex);
  return CollateBatch(ptrs, meta, nullptr);
}

TEST(AwMoeTest, ForwardShapes) {
  Rng rng(1);
  AwMoeRanker model(TestMeta(), TinyConfig(), &rng);
  Batch batch = MakeBatch(TestMeta(), {2, 3, 0});
  AwMoeRanker::ForwardResult result = model.Forward(batch);
  EXPECT_EQ(result.logits.rows(), 3);
  EXPECT_EQ(result.logits.cols(), 1);
  EXPECT_EQ(result.gate.rows(), 3);
  EXPECT_EQ(result.gate.cols(), 4);
  EXPECT_EQ(result.expert_scores.rows(), 3);
  EXPECT_EQ(result.expert_scores.cols(), 4);
}

TEST(AwMoeTest, LogitsAreGateWeightedExpertScores) {
  // Verifies Eq. 9: y = sum_k g_k s_k, elementwise per example.
  Rng rng(2);
  AwMoeRanker model(TestMeta(), TinyConfig(), &rng);
  Batch batch = MakeBatch(TestMeta(), {2, 4});
  AwMoeRanker::ForwardResult result = model.Forward(batch);
  Matrix expected = DotRows(result.expert_scores.value(),
                            result.gate.value());
  EXPECT_TRUE(AllClose(result.logits.value(), expected, 1e-5f));
}

TEST(AwMoeTest, GradientsReachAllParameterGroups) {
  Rng rng(3);
  AwMoeRanker model(TestMeta(), TinyConfig(), &rng);
  Batch batch = MakeBatch(TestMeta(), {3, 2, 1, 4});
  Var loss = ag::BceWithLogitsLoss(model.ForwardLogits(batch), batch.labels);
  loss.Backward();
  int64_t with_grad = 0, total = 0;
  for (const Var& p : model.Parameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  // Everything except possibly sparsely-hit embedding tables gets grads;
  // with this batch every module participates.
  EXPECT_EQ(with_grad, total);
}

TEST(AwMoeTest, GateRepresentationMatchesForwardGate) {
  Rng rng(4);
  AwMoeRanker model(TestMeta(), TinyConfig(), &rng);
  Batch batch = MakeBatch(TestMeta(), {2, 3});
  AwMoeRanker::ForwardResult result = model.Forward(batch);
  Var gate_only = model.GateRepresentation(batch);
  EXPECT_TRUE(AllClose(result.gate.value(), gate_only.value(), 1e-6f));
}

TEST(AwMoeTest, ForwardLogitsWithGateMatchesFullForwardInSearchMode) {
  // §III-F: sharing the session gate must be exact, not approximate,
  // because the gate ignores the target item in search mode.
  Rng rng(5);
  DatasetMeta meta = TestMeta();
  AwMoeRanker model(meta, TinyConfig(), &rng);

  // A session: same user/query/history, different targets.
  static std::vector<Example> storage;
  storage.clear();
  Example base = MakeExample(9, 3);
  for (int64_t t = 0; t < 5; ++t) {
    Example ex = base;
    ex.target_item = 1 + t;
    ex.target_cat = 1 + (t % 4);
    storage.push_back(ex);
  }
  std::vector<const Example*> ptrs;
  for (const Example& ex : storage) ptrs.push_back(&ex);
  Batch batch = CollateBatch(ptrs, meta, nullptr);

  Matrix full = model.ForwardLogits(batch).value();
  Batch probe = CollateBatch({ptrs[0]}, meta, nullptr);
  Var shared_gate = model.GateRepresentation(probe);
  Matrix shared = model.ForwardLogitsWithGate(batch, shared_gate).value();
  EXPECT_TRUE(AllClose(full, shared, 1e-5f));
}

TEST(AwMoeTest, DiversityPenaltyDefinedOnlyWhenConfigured) {
  Rng rng(6);
  AwMoeRanker plain(TestMeta(), TinyConfig(), &rng);
  Batch batch = MakeBatch(TestMeta(), {2});
  plain.Forward(batch);
  EXPECT_FALSE(plain.PendingAuxiliaryLoss().defined());

  AwMoeConfig config = TinyConfig();
  config.diversity_weight = 0.1;
  Rng rng2(6);
  AwMoeRanker regularised(TestMeta(), config, &rng2);
  regularised.Forward(batch);
  ASSERT_TRUE(regularised.PendingAuxiliaryLoss().defined());
  // Penalty is -w * variance <= 0.
  EXPECT_LE(regularised.PendingAuxiliaryLoss().value()(0, 0), 0.0f);
}

TEST(AwMoeTest, NameReflectsConfig) {
  Rng rng(7);
  AwMoeConfig config = TinyConfig();
  config.name = "AW-MoE & CL";
  AwMoeRanker model(TestMeta(), config, &rng);
  EXPECT_EQ(model.name(), "AW-MoE & CL");
}

TEST(AwMoeTest, RecommendationModeWorksEndToEnd) {
  Rng rng(8);
  DatasetMeta meta = TestMeta(/*recommendation=*/true);
  AwMoeRanker model(meta, TinyConfig(), &rng);
  Batch batch = MakeBatch(meta, {2, 3});
  Var logits = model.ForwardLogits(batch);
  EXPECT_EQ(logits.rows(), 2);
  ag::BceWithLogitsLoss(logits, batch.labels).Backward();
}

TEST(AwMoeTest, DifferentUsersGetDifferentGates) {
  Rng rng(9);
  AwMoeRanker model(TestMeta(), TinyConfig(), &rng);
  Batch batch = MakeBatch(TestMeta(), {4, 4});
  Matrix gate = model.GateRepresentation(batch).value();
  bool differs = false;
  for (int64_t k = 0; k < gate.cols(); ++k) {
    if (gate(0, k) != gate(1, k)) differs = true;
  }
  EXPECT_TRUE(differs)
      << "user-oriented gating: different histories, different activation";
}

TEST(AwMoeTest, TopKSparseGatingProducesSparseLogitsPath) {
  Rng rng(10);
  AwMoeConfig config = TinyConfig();
  config.gate.top_k = 1;
  AwMoeRanker model(TestMeta(), config, &rng);
  Batch batch = MakeBatch(TestMeta(), {3, 2});
  AwMoeRanker::ForwardResult result = model.Forward(batch);
  for (int64_t i = 0; i < result.gate.rows(); ++i) {
    int64_t nonzero = 0;
    for (int64_t k = 0; k < result.gate.cols(); ++k) {
      if (result.gate.value()(i, k) != 0.0f) ++nonzero;
    }
    EXPECT_LE(nonzero, 1);
  }
}

}  // namespace
}  // namespace awmoe
