#include "core/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "data/jd_synthetic.h"
#include "eval/metrics.h"
#include "models/dnn_ranker.h"

namespace awmoe {
namespace {

JdConfig TinyCorpus() {
  JdConfig config;
  config.num_users = 300;
  config.num_items = 200;
  config.num_categories = 8;
  config.brands_per_category = 4;
  config.num_shops = 15;
  config.train_sessions = 300;
  config.test_sessions = 60;
  config.longtail1_sessions = 10;
  config.longtail2_sessions = 10;
  config.seed = 4242;
  return config;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {16, 8};
  dims.num_experts = 3;
  return dims;
}

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new JdDataset(JdSyntheticGenerator(TinyCorpus()).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete standardizer_;
    data_ = nullptr;
    standardizer_ = nullptr;
  }
  static JdDataset* data_;
  static Standardizer* standardizer_;
};

JdDataset* TrainerTest::data_ = nullptr;
Standardizer* TrainerTest::standardizer_ = nullptr;

TEST_F(TrainerTest, LossDecreasesOverEpochs) {
  Rng rng(1);
  DnnRanker model(data_->meta, TinyDims(), &rng);
  TrainerConfig config;
  config.epochs = 3;
  config.batch_size = 64;
  config.lr = 3e-3f;
  Trainer trainer(&model, config);
  auto history = trainer.Train(data_->train, data_->meta, standardizer_);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().mean_rank_loss, history.front().mean_rank_loss);
}

TEST_F(TrainerTest, TrainingBeatsUntrainedModel) {
  Rng rng(2);
  DnnRanker model(data_->meta, TinyDims(), &rng);
  auto before = Predict(&model, data_->full_test, data_->meta, standardizer_);
  double auc_before =
      EvaluateRanking(data_->full_test, before).auc;

  TrainerConfig config;
  config.epochs = 3;
  config.batch_size = 64;
  config.lr = 3e-3f;
  Trainer trainer(&model, config);
  trainer.Train(data_->train, data_->meta, standardizer_);
  auto after = Predict(&model, data_->full_test, data_->meta, standardizer_);
  double auc_after = EvaluateRanking(data_->full_test, after).auc;
  EXPECT_GT(auc_after, auc_before + 0.05);
  EXPECT_GT(auc_after, 0.6);
}

TEST_F(TrainerTest, ContrastiveTrainingRunsAndReportsClLoss) {
  Rng rng(3);
  AwMoeConfig aw_config;
  aw_config.dims = TinyDims();
  AwMoeRanker model(data_->meta, aw_config, &rng);
  TrainerConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  config.contrastive = true;
  Trainer trainer(&model, config);
  auto history = trainer.Train(data_->train, data_->meta, standardizer_);
  EXPECT_GT(history[0].mean_cl_loss, 0.0);
  // InfoNCE with l=3 negatives starts near ln(4).
  EXPECT_LT(history[0].mean_cl_loss, 3.0);
}

TEST_F(TrainerTest, ContrastiveLossDecreases) {
  Rng rng(4);
  AwMoeConfig aw_config;
  aw_config.dims = TinyDims();
  AwMoeRanker model(data_->meta, aw_config, &rng);
  TrainerConfig config;
  config.epochs = 4;
  config.batch_size = 64;
  config.contrastive = true;
  config.cl.weight = 0.2;  // Emphasise CL so the trend is visible.
  Trainer trainer(&model, config);
  auto history = trainer.Train(data_->train, data_->meta, standardizer_);
  EXPECT_LT(history.back().mean_cl_loss, history.front().mean_cl_loss);
}

TEST_F(TrainerTest, PredictAlignsWithExamplesAndIsProbability) {
  Rng rng(5);
  DnnRanker model(data_->meta, TinyDims(), &rng);
  auto scores = Predict(&model, data_->full_test, data_->meta, standardizer_);
  ASSERT_EQ(scores.size(), data_->full_test.size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(TrainerTest, PredictIsDeterministic) {
  Rng rng(6);
  DnnRanker model(data_->meta, TinyDims(), &rng);
  auto a = Predict(&model, data_->full_test, data_->meta, standardizer_);
  auto b = Predict(&model, data_->full_test, data_->meta, standardizer_);
  EXPECT_EQ(a, b);
}

TEST_F(TrainerTest, DeterministicTrainingForSameSeed) {
  auto run = [&]() {
    Rng rng(7);
    DnnRanker model(data_->meta, TinyDims(), &rng);
    TrainerConfig config;
    config.epochs = 1;
    config.batch_size = 64;
    config.seed = 11;
    Trainer trainer(&model, config);
    trainer.Train(data_->train, data_->meta, standardizer_);
    return Predict(&model, data_->full_test, data_->meta, standardizer_);
  };
  EXPECT_EQ(run(), run());
}

TEST_F(TrainerTest, AuxiliaryDiversityLossIsApplied) {
  Rng rng(8);
  AwMoeConfig aw_config;
  aw_config.dims = TinyDims();
  aw_config.diversity_weight = 0.05;
  AwMoeRanker model(data_->meta, aw_config, &rng);
  TrainerConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  Trainer trainer(&model, config);
  // Must run without error and keep training stable.
  auto history = trainer.Train(data_->train, data_->meta, standardizer_);
  EXPECT_TRUE(std::isfinite(history[0].mean_rank_loss));
}

}  // namespace
}  // namespace awmoe
