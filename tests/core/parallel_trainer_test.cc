// ParallelTrainer determinism contract (see core/parallel_trainer.h):
// worker-count independence is BITWISE, single-shard steps are bitwise-
// equal to the serial Trainer, and accumulated shard groups match a
// serial run over the same row unions to float tolerance.

#include "core/parallel_trainer.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/jd_synthetic.h"
#include "models/dnn_ranker.h"
#include "models/ranker.h"

namespace awmoe {
namespace {

JdConfig TinyCorpus() {
  JdConfig config;
  config.num_users = 200;
  config.num_items = 150;
  config.num_categories = 6;
  config.brands_per_category = 4;
  config.num_shops = 12;
  config.train_sessions = 120;
  config.test_sessions = 30;
  config.longtail1_sessions = 5;
  config.longtail2_sessions = 5;
  config.seed = 90210;
  return config;
}

AwMoeConfig TinyAwMoeConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 4;
  config.dims.tower_mlp = {8, 6};
  config.dims.activation_unit = {6, 4};
  config.dims.gate_unit = {6, 4};
  config.dims.expert = {12, 8};
  return config;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  return dims;
}

/// Bitwise parameter equality (exact float identity, not tolerance).
void ExpectParamsBitwiseEqual(const Ranker& a, const Ranker& b) {
  const std::vector<Var> pa = a.Parameters();
  const std::vector<Var> pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    const Matrix& ma = pa[i].value();
    const Matrix& mb = pb[i].value();
    ASSERT_EQ(ma.rows(), mb.rows());
    ASSERT_EQ(ma.cols(), mb.cols());
    for (int64_t k = 0; k < ma.size(); ++k) {
      ASSERT_EQ(ma.data()[k], mb.data()[k])
          << "param " << i << " element " << k << " diverged";
    }
  }
}

double MaxParamAbsDiff(const Ranker& a, const Ranker& b) {
  const std::vector<Var> pa = a.Parameters();
  const std::vector<Var> pb = b.Parameters();
  EXPECT_EQ(pa.size(), pb.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) {
    const Matrix& ma = pa[i].value();
    const Matrix& mb = pb[i].value();
    for (int64_t k = 0; k < ma.size(); ++k) {
      max_diff = std::max(
          max_diff, std::abs(static_cast<double>(ma.data()[k]) -
                             static_cast<double>(mb.data()[k])));
    }
  }
  return max_diff;
}

class ParallelTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new JdDataset(JdSyntheticGenerator(TinyCorpus()).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete standardizer_;
    data_ = nullptr;
    standardizer_ = nullptr;
  }
  static JdDataset* data_;
  static Standardizer* standardizer_;
};

JdDataset* ParallelTrainerTest::data_ = nullptr;
Standardizer* ParallelTrainerTest::standardizer_ = nullptr;

TEST_F(ParallelTrainerTest, SingleShardStepsMatchSerialTrainerBitwise) {
  // grad_accumulation == 1, contrastive off: the parallel trainer walks
  // the serial Trainer's exact step sequence (the 1.0f shard weight is
  // an IEEE multiply identity), so two epochs end bit-for-bit equal.
  TrainerConfig base;
  base.batch_size = 64;
  base.epochs = 2;
  base.seed = 11;

  Rng rng_serial(5);
  AwMoeRanker serial_model(data_->meta, TinyAwMoeConfig(), &rng_serial);
  Rng rng_parallel(5);
  AwMoeRanker parallel_model(data_->meta, TinyAwMoeConfig(), &rng_parallel);

  Trainer serial(&serial_model, base);
  serial.Train(data_->train, data_->meta, standardizer_);

  ParallelTrainerConfig config;
  config.base = base;
  config.num_workers = 1;
  config.grad_accumulation = 1;
  ParallelTrainer parallel(&parallel_model, config);
  parallel.Train(data_->train, data_->meta, standardizer_);

  ExpectParamsBitwiseEqual(serial_model, parallel_model);
}

TEST_F(ParallelTrainerTest, WorkerCountDoesNotChangeParametersBitwise) {
  // The headline contract: 4 workers over 3-shard groups, contrastive
  // ON (per-shard forked augmentation streams), ends bit-for-bit equal
  // to the same schedule on 1 worker.
  TrainerConfig base;
  base.batch_size = 32;
  base.epochs = 2;
  base.seed = 23;
  base.contrastive = true;

  ParallelTrainerConfig config;
  config.base = base;
  config.grad_accumulation = 3;

  Rng rng_one(9);
  AwMoeRanker one_worker_model(data_->meta, TinyAwMoeConfig(), &rng_one);
  config.num_workers = 1;
  {
    ParallelTrainer trainer(&one_worker_model, config);
    trainer.Train(data_->train, data_->meta, standardizer_);
    EXPECT_GT(trainer.steps(), 0);
  }

  Rng rng_four(9);
  AwMoeRanker four_worker_model(data_->meta, TinyAwMoeConfig(), &rng_four);
  config.num_workers = 4;
  {
    ParallelTrainer trainer(&four_worker_model, config);
    trainer.Train(data_->train, data_->meta, standardizer_);
  }

  ExpectParamsBitwiseEqual(one_worker_model, four_worker_model);
}

TEST_F(ParallelTrainerTest, AccumulatedShardsMatchSerialLargeBatch) {
  // Two B-row shards per step against a serial trainer with 2B-row
  // batches: the same shuffle stream slices into the same row unions,
  // and the row-weighted shard-gradient average equals the union-mean
  // gradient — mathematically exactly, in float to summation-order
  // tolerance. One epoch keeps the float drift bounded.
  TrainerConfig base;
  base.batch_size = 32;
  base.epochs = 1;
  base.seed = 31;

  Rng rng_serial(13);
  DnnRanker serial_model(data_->meta, TinyDims(), &rng_serial);
  Rng rng_parallel(13);
  DnnRanker parallel_model(data_->meta, TinyDims(), &rng_parallel);

  TrainerConfig serial_config = base;
  serial_config.batch_size = 64;
  Trainer serial(&serial_model, serial_config);
  EpochStats serial_stats =
      serial.TrainEpoch(data_->train, data_->meta, standardizer_);

  ParallelTrainerConfig config;
  config.base = base;
  config.num_workers = 2;
  config.grad_accumulation = 2;
  ParallelTrainer parallel(&parallel_model, config);
  EpochStats parallel_stats =
      parallel.TrainEpoch(data_->train, data_->meta, standardizer_);

  // Twice the shards, same optimizer step count.
  EXPECT_EQ(parallel_stats.num_batches, 2 * serial_stats.num_batches);
  EXPECT_EQ(parallel.steps(), serial_stats.num_batches);
  EXPECT_LT(MaxParamAbsDiff(serial_model, parallel_model), 1e-3);
}

TEST_F(ParallelTrainerTest, TrainingLearns) {
  // The parallel schedule must still optimise: loss decreases across
  // epochs with real parallelism in play.
  TrainerConfig base;
  base.batch_size = 32;
  base.epochs = 3;
  base.lr = 3e-3f;
  base.seed = 47;

  Rng rng(21);
  DnnRanker model(data_->meta, TinyDims(), &rng);
  ParallelTrainerConfig config;
  config.base = base;
  config.num_workers = 3;
  config.grad_accumulation = 2;
  ParallelTrainer trainer(&model, config);
  const std::vector<EpochStats> history =
      trainer.Train(data_->train, data_->meta, standardizer_);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_GT(history.front().num_batches, 0);
  EXPECT_LT(history.back().mean_rank_loss, history.front().mean_rank_loss);
}

}  // namespace
}  // namespace awmoe
