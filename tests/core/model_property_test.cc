// Parameterized model-level properties: for every (batch size, history
// length, mode) combination, all four rankers must produce correctly
// shaped, finite, deterministic, padding-invariant outputs.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "mat/kernels.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace awmoe {
namespace {

using Params = std::tuple<int64_t, int64_t, bool>;  // batch, hist, rec mode.

DatasetMeta TestMeta(bool recommendation) {
  DatasetMeta meta;
  meta.num_items = 60;
  meta.num_cats = 7;
  meta.num_brands = 21;
  meta.num_shops = 9;
  meta.num_queries = 14;
  meta.max_seq_len = 5;
  meta.recommendation_mode = recommendation;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

Batch MakeBatch(const DatasetMeta& meta, int64_t size, int64_t hist) {
  static std::vector<Example> storage;
  storage.clear();
  Rng rng(size * 1000 + hist);
  for (int64_t i = 0; i < size; ++i) {
    Example ex;
    int64_t len = hist == 0 ? 0 : 1 + (i % hist);
    for (int64_t j = 0; j < len; ++j) {
      ex.behavior_items.push_back(rng.UniformInt(1, 60));
      ex.behavior_cats.push_back(rng.UniformInt(1, 7));
      ex.behavior_brands.push_back(rng.UniformInt(1, 21));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Normal()));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
    }
    ex.target_item = rng.UniformInt(1, 60);
    ex.target_cat = rng.UniformInt(1, 7);
    ex.target_brand = rng.UniformInt(1, 21);
    ex.target_shop = rng.UniformInt(1, 9);
    ex.query_id = rng.UniformInt(1, 14);
    ex.query_cat = ex.target_cat;
    ex.label = static_cast<float>(i % 2);
    ex.numeric.assign(kNumNumericFeatures, 0.1f);
    storage.push_back(std::move(ex));
  }
  std::vector<const Example*> ptrs;
  for (const Example& ex : storage) ptrs.push_back(&ex);
  return CollateBatch(ptrs, meta, nullptr);
}

class ModelPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(ModelPropertyTest, AllRankersProduceFiniteLogits) {
  auto [batch_size, hist, rec] = GetParam();
  DatasetMeta meta = TestMeta(rec);
  Batch batch = MakeBatch(meta, batch_size, hist);

  Rng r1(1), r2(2), r3(3), r4(4);
  DnnRanker dnn(meta, TinyDims(), &r1);
  DinRanker din(meta, TinyDims(), &r2);
  CategoryMoeRanker cat_moe(meta, TinyDims(), &r3);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker aw_moe(meta, config, &r4);

  for (Ranker* model :
       std::initializer_list<Ranker*>{&dnn, &din, &cat_moe, &aw_moe}) {
    Var logits = model->ForwardLogits(batch);
    ASSERT_EQ(logits.rows(), batch_size) << model->name();
    ASSERT_EQ(logits.cols(), 1) << model->name();
    for (int64_t i = 0; i < batch_size; ++i) {
      EXPECT_TRUE(std::isfinite(logits.value()(i, 0)))
          << model->name() << " row " << i;
    }
  }
}

TEST_P(ModelPropertyTest, ForwardIsDeterministic) {
  auto [batch_size, hist, rec] = GetParam();
  DatasetMeta meta = TestMeta(rec);
  Batch batch = MakeBatch(meta, batch_size, hist);
  Rng rng(5);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);
  Matrix a = model.ForwardLogits(batch).value();
  Matrix b = model.ForwardLogits(batch).value();
  EXPECT_TRUE(AllClose(a, b, 0.0f));
}

TEST_P(ModelPropertyTest, TrainingStepReducesBatchLoss) {
  auto [batch_size, hist, rec] = GetParam();
  if (batch_size < 2) GTEST_SKIP() << "needs both labels present";
  DatasetMeta meta = TestMeta(rec);
  Batch batch = MakeBatch(meta, batch_size, hist);
  Rng rng(6);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);
  AdamW opt(model.Parameters(), 5e-3f, 0.0f);

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    opt.ZeroGrad();
    Var loss =
        ag::BceWithLogitsLoss(model.ForwardLogits(batch), batch.labels);
    if (step == 0) first_loss = loss.value()(0, 0);
    last_loss = loss.value()(0, 0);
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss)
      << "30 full-batch steps must reduce training loss";
}

TEST_P(ModelPropertyTest, GateShapeAlwaysBatchByK) {
  auto [batch_size, hist, rec] = GetParam();
  DatasetMeta meta = TestMeta(rec);
  Batch batch = MakeBatch(meta, batch_size, hist);
  Rng rng(7);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);
  Var gate = model.GateRepresentation(batch);
  EXPECT_EQ(gate.rows(), batch_size);
  EXPECT_EQ(gate.cols(), TinyDims().num_experts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPropertyTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 16),
                       ::testing::Values<int64_t>(0, 2, 5),
                       ::testing::Bool()));

}  // namespace
}  // namespace awmoe
