// Property-based kernel tests: algebraic identities that must hold for
// every shape, swept with parameterized gtest.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal());
  }
  return m;
}

using Shape = std::tuple<int64_t, int64_t, int64_t>;  // m, k, n.

class GemmPropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmPropertyTest, TransAAgreesWithExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Matrix a = RandomMatrix(k, m, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-4f));
}

TEST_P(GemmPropertyTest, TransBAgreesWithExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 991 + k * 97 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(n, k, &rng);
  EXPECT_TRUE(AllClose(MatMulTransB(a, b), MatMul(a, Transpose(b)), 1e-4f));
}

TEST_P(GemmPropertyTest, DistributesOverAddition) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 11 + n * 13);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b1 = RandomMatrix(k, n, &rng);
  Matrix b2 = RandomMatrix(k, n, &rng);
  Matrix lhs = MatMul(a, Add(b1, b2));
  Matrix rhs = Add(MatMul(a, b1), MatMul(a, b2));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-3f));
}

TEST_P(GemmPropertyTest, ScalarCommutes) {
  auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_TRUE(AllClose(MulScalar(MatMul(a, b), 2.5f),
                       MatMul(MulScalar(a, 2.5f), b), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmPropertyTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 7, 3}, Shape{4, 1, 5},
                      Shape{8, 8, 8}, Shape{13, 5, 2}, Shape{32, 17, 9},
                      Shape{64, 24, 16}));

class RowColPropertyTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(RowColPropertyTest, SumDecompositions) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 31 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  // Total sum via rows == via cols == direct.
  EXPECT_NEAR(SumAll(RowSum(a)), SumAll(a), 1e-3);
  EXPECT_NEAR(SumAll(ColSum(a)), SumAll(a), 1e-3);
}

TEST_P(RowColPropertyTest, TransposeInvolution) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 37 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a, 0.0f));
}

TEST_P(RowColPropertyTest, ConcatSliceRoundTrip) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 41 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  Matrix b = RandomMatrix(rows, cols + 1, &rng);
  Matrix joined = ConcatCols({&a, &b});
  EXPECT_TRUE(AllClose(SliceCols(joined, 0, cols), a, 0.0f));
  EXPECT_TRUE(AllClose(SliceCols(joined, cols, cols * 2 + 1), b, 0.0f));
}

TEST_P(RowColPropertyTest, SoftmaxRowsIsInvariantToRowShift) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 43 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  Matrix shifted = AddScalar(a, 42.0f);
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(shifted), 1e-5f));
}

TEST_P(RowColPropertyTest, LogSumExpIsMaxPlusNonneg) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 47 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  Matrix lse = LogSumExpRows(a);
  for (int64_t r = 0; r < rows; ++r) {
    float row_max = a(r, 0);
    for (int64_t c = 1; c < cols; ++c) row_max = std::max(row_max, a(r, c));
    EXPECT_GE(lse(r, 0), row_max - 1e-5f);
    EXPECT_LE(lse(r, 0), row_max + std::log(static_cast<float>(cols)) + 1e-5f);
  }
}

TEST_P(RowColPropertyTest, BroadcastIdentities) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 53 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  // Multiplying rows by ones changes nothing.
  Matrix ones_col = Matrix::Full(rows, 1, 1.0f);
  EXPECT_TRUE(AllClose(MulColBroadcast(a, ones_col), a, 0.0f));
  Matrix ones_row = Matrix::Full(1, cols, 1.0f);
  EXPECT_TRUE(AllClose(MulRowBroadcast(a, ones_row), a, 0.0f));
  // Adding a zero row changes nothing.
  Matrix zeros_row(1, cols);
  EXPECT_TRUE(AllClose(AddRowBroadcast(a, zeros_row), a, 0.0f));
}

TEST_P(RowColPropertyTest, DotRowsMatchesMulThenRowSum) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 59 + cols);
  Matrix a = RandomMatrix(rows, cols, &rng);
  Matrix b = RandomMatrix(rows, cols, &rng);
  EXPECT_TRUE(AllClose(DotRows(a, b), RowSum(Mul(a, b)), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, RowColPropertyTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{1, 9},
                                           std::pair<int64_t, int64_t>{6, 1},
                                           std::pair<int64_t, int64_t>{5, 5},
                                           std::pair<int64_t, int64_t>{17, 3},
                                           std::pair<int64_t, int64_t>{32,
                                                                       16}));

}  // namespace
}  // namespace awmoe
