#include "mat/matrix.h"

#include <gtest/gtest.h>

namespace awmoe {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructorZeroInitialises) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
}

TEST(MatrixTest, FullFillsValue) {
  Matrix m = Matrix::Full(2, 2, 3.5f);
  EXPECT_EQ(m(0, 0), 3.5f);
  EXPECT_EQ(m(1, 1), 3.5f);
}

TEST(MatrixTest, FromVectorRowMajor) {
  Matrix m = Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(m(0, 2), 3.0f);
  EXPECT_EQ(m(1, 0), 4.0f);
  EXPECT_EQ(m(1, 2), 6.0f);
}

TEST(MatrixTest, RowAndColVectors) {
  Matrix r = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  Matrix c = Matrix::ColVector({1, 2, 3});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 1);
}

TEST(MatrixTest, RowPointerAccess) {
  Matrix m = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  const float* row1 = m.row(1);
  EXPECT_EQ(row1[0], 3.0f);
  EXPECT_EQ(row1[1], 4.0f);
  m.row(0)[1] = 9.0f;
  EXPECT_EQ(m(0, 1), 9.0f);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a = Matrix::Full(2, 2, 1.0f);
  Matrix b = a;
  b(0, 0) = 5.0f;
  EXPECT_EQ(a(0, 0), 1.0f);
  EXPECT_EQ(b(0, 0), 5.0f);
}

TEST(MatrixTest, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).SameShape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).SameShape(Matrix(3, 2)));
}

TEST(MatrixTest, FillAndSetZero) {
  Matrix m(2, 2);
  m.Fill(7.0f);
  EXPECT_EQ(m(1, 0), 7.0f);
  m.SetZero();
  EXPECT_EQ(m(1, 0), 0.0f);
}

TEST(MatrixTest, ShapeString) {
  EXPECT_EQ(Matrix(3, 5).ShapeString(), "3x5");
}

TEST(MatrixDeathTest, FromVectorSizeMismatchChecks) {
  EXPECT_DEATH(Matrix::FromVector(2, 2, {1, 2, 3}), "FromVector");
}

}  // namespace
}  // namespace awmoe
