#include "mat/kernels.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace awmoe {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal());
  }
  return m;
}

TEST(KernelsTest, MatMulSmallKnown) {
  Matrix a = Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Matrix::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58.0f);
  EXPECT_EQ(c(0, 1), 64.0f);
  EXPECT_EQ(c(1, 0), 139.0f);
  EXPECT_EQ(c(1, 1), 154.0f);
}

TEST(KernelsTest, MatMulIdentity) {
  Rng rng(1);
  Matrix a = RandomMatrix(4, 4, &rng);
  Matrix eye(4, 4);
  for (int i = 0; i < 4; ++i) eye(i, i) = 1.0f;
  EXPECT_TRUE(AllClose(MatMul(a, eye), a, 1e-6f));
  EXPECT_TRUE(AllClose(MatMul(eye, a), a, 1e-6f));
}

TEST(KernelsTest, MatMulTransVariantsAgreeWithExplicitTranspose) {
  Rng rng(2);
  Matrix a = RandomMatrix(5, 3, &rng);
  Matrix b = RandomMatrix(5, 4, &rng);
  // A^T B.
  EXPECT_TRUE(
      AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-4f));
  Matrix c = RandomMatrix(6, 3, &rng);
  Matrix d = RandomMatrix(7, 3, &rng);
  // C D^T.
  EXPECT_TRUE(
      AllClose(MatMulTransB(c, d), MatMul(c, Transpose(d)), 1e-4f));
}

TEST(KernelsTest, TransposeInvolution) {
  Rng rng(3);
  Matrix a = RandomMatrix(3, 7, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a, 0.0f));
}

TEST(KernelsTest, ElementwiseOps) {
  Matrix a = Matrix::FromVector(1, 4, {1, 2, 3, 4});
  Matrix b = Matrix::FromVector(1, 4, {4, 3, 2, 1});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix::Full(1, 4, 5.0f), 0.0f));
  EXPECT_TRUE(AllClose(Sub(a, b),
                       Matrix::FromVector(1, 4, {-3, -1, 1, 3}), 0.0f));
  EXPECT_TRUE(AllClose(Mul(a, b),
                       Matrix::FromVector(1, 4, {4, 6, 6, 4}), 0.0f));
  EXPECT_TRUE(AllClose(Div(a, b),
                       Matrix::FromVector(1, 4, {0.25f, 2.0f / 3, 1.5f, 4}),
                       1e-6f));
}

TEST(KernelsTest, InPlaceOps) {
  Matrix a = Matrix::Full(2, 2, 1.0f);
  AddInPlace(&a, Matrix::Full(2, 2, 2.0f));
  EXPECT_EQ(a(0, 0), 3.0f);
  AxpyInPlace(&a, 0.5f, Matrix::Full(2, 2, 4.0f));
  EXPECT_EQ(a(1, 1), 5.0f);
  ScaleInPlace(&a, 2.0f);
  EXPECT_EQ(a(0, 1), 10.0f);
}

TEST(KernelsTest, ScalarOps) {
  Matrix a = Matrix::FromVector(1, 3, {1, -2, 3});
  EXPECT_TRUE(AllClose(AddScalar(a, 1.0f),
                       Matrix::FromVector(1, 3, {2, -1, 4}), 0.0f));
  EXPECT_TRUE(AllClose(MulScalar(a, -2.0f),
                       Matrix::FromVector(1, 3, {-2, 4, -6}), 0.0f));
}

TEST(KernelsTest, ReluAndBackward) {
  Matrix a = Matrix::FromVector(1, 4, {-1, 0, 2, -3});
  EXPECT_TRUE(AllClose(Relu(a), Matrix::FromVector(1, 4, {0, 0, 2, 0}), 0.0f));
  Matrix g = Matrix::Full(1, 4, 1.0f);
  EXPECT_TRUE(AllClose(ReluBackward(g, a),
                       Matrix::FromVector(1, 4, {0, 0, 1, 0}), 0.0f));
}

TEST(KernelsTest, SigmoidValuesAndStability) {
  Matrix a = Matrix::FromVector(1, 3, {0.0f, 100.0f, -100.0f});
  Matrix s = Sigmoid(a);
  EXPECT_NEAR(s(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(s(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(s(0, 2), 0.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(s(0, 1)));
  EXPECT_TRUE(std::isfinite(s(0, 2)));
}

TEST(KernelsTest, ExpLogRoundTrip) {
  Matrix a = Matrix::FromVector(1, 3, {0.5f, 1.0f, 2.0f});
  EXPECT_TRUE(AllClose(Log(Exp(a)), a, 1e-5f));
}

TEST(KernelsTest, LogClampsAtFloor) {
  Matrix a = Matrix::FromVector(1, 2, {0.0f, -5.0f});
  Matrix l = Log(a, 1e-12f);
  EXPECT_TRUE(std::isfinite(l(0, 0)));
  EXPECT_TRUE(std::isfinite(l(0, 1)));
}

TEST(KernelsTest, ClipBounds) {
  Matrix a = Matrix::FromVector(1, 3, {-2, 0.5f, 7});
  EXPECT_TRUE(AllClose(Clip(a, 0.0f, 1.0f),
                       Matrix::FromVector(1, 3, {0, 0.5f, 1}), 0.0f));
}

TEST(KernelsTest, AddRowBroadcast) {
  Matrix a = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::RowVector({10, 20});
  Matrix c = AddRowBroadcast(a, b);
  EXPECT_TRUE(AllClose(c, Matrix::FromVector(2, 2, {11, 22, 13, 24}), 0.0f));
}

TEST(KernelsTest, MulColBroadcast) {
  Matrix a = Matrix::FromVector(2, 3, {1, 1, 1, 2, 2, 2});
  Matrix w = Matrix::ColVector({3, 0.5f});
  Matrix c = MulColBroadcast(a, w);
  EXPECT_TRUE(AllClose(c, Matrix::FromVector(2, 3, {3, 3, 3, 1, 1, 1}), 0.0f));
}

TEST(KernelsTest, MulRowBroadcast) {
  Matrix a = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  Matrix r = Matrix::RowVector({2, 10});
  EXPECT_TRUE(AllClose(MulRowBroadcast(a, r),
                       Matrix::FromVector(2, 2, {2, 20, 6, 40}), 0.0f));
}

TEST(KernelsTest, BroadcastCol) {
  Matrix col = Matrix::ColVector({1, 2});
  Matrix out = BroadcastCol(col, 3);
  EXPECT_TRUE(AllClose(out, Matrix::FromVector(2, 3, {1, 1, 1, 2, 2, 2}),
                       0.0f));
}

TEST(KernelsTest, Reductions) {
  Matrix a = Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(ColSum(a), Matrix::RowVector({5, 7, 9}), 0.0f));
  EXPECT_TRUE(AllClose(RowSum(a), Matrix::ColVector({6, 15}), 0.0f));
  EXPECT_TRUE(AllClose(RowMean(a), Matrix::ColVector({2, 5}), 1e-6f));
  EXPECT_DOUBLE_EQ(SumAll(a), 21.0);
  EXPECT_DOUBLE_EQ(MeanAll(a), 3.5);
  EXPECT_EQ(MaxAll(a), 6.0f);
  EXPECT_EQ(MinAll(a), 1.0f);
}

TEST(KernelsTest, NormMatchesHandComputation) {
  Matrix a = Matrix::FromVector(1, 2, {3, 4});
  EXPECT_NEAR(Norm(a), 5.0, 1e-9);
}

TEST(KernelsTest, DotRows) {
  Matrix a = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromVector(2, 2, {5, 6, 7, 8});
  EXPECT_TRUE(AllClose(DotRows(a, b), Matrix::ColVector({17, 53}), 0.0f));
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  Rng rng(4);
  Matrix a = RandomMatrix(5, 7, &rng);
  Matrix s = SoftmaxRows(a);
  for (int64_t r = 0; r < s.rows(); ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < s.cols(); ++c) {
      EXPECT_GT(s(r, c), 0.0f);
      total += s(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(KernelsTest, SoftmaxShiftInvariant) {
  Matrix a = Matrix::FromVector(1, 3, {1, 2, 3});
  Matrix b = AddScalar(a, 100.0f);
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(b), 1e-5f));
}

TEST(KernelsTest, SoftmaxStableForLargeInputs) {
  Matrix a = Matrix::FromVector(1, 2, {1000.0f, 999.0f});
  Matrix s = SoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(s(0, 0)));
  EXPECT_NEAR(s(0, 0) + s(0, 1), 1.0f, 1e-5f);
}

TEST(KernelsTest, LogSumExpMatchesNaive) {
  Matrix a = Matrix::FromVector(2, 2, {0.1f, 0.2f, -1.0f, 2.0f});
  Matrix lse = LogSumExpRows(a);
  for (int64_t r = 0; r < 2; ++r) {
    float naive = std::log(std::exp(a(r, 0)) + std::exp(a(r, 1)));
    EXPECT_NEAR(lse(r, 0), naive, 1e-5f);
  }
}

TEST(KernelsTest, GatherScatterRoundTrip) {
  Matrix table = Matrix::FromVector(3, 2, {1, 2, 3, 4, 5, 6});
  std::vector<int64_t> idx = {2, 0, 2};
  Matrix gathered = GatherRows(table, idx);
  EXPECT_TRUE(AllClose(gathered,
                       Matrix::FromVector(3, 2, {5, 6, 1, 2, 5, 6}), 0.0f));

  Matrix target(3, 2);
  ScatterAddRows(&target, idx, gathered);
  // Row 2 accumulated twice.
  EXPECT_TRUE(AllClose(target,
                       Matrix::FromVector(3, 2, {1, 2, 0, 0, 10, 12}), 0.0f));
}

TEST(KernelsTest, ConcatAndSliceCols) {
  Matrix a = Matrix::FromVector(2, 1, {1, 2});
  Matrix b = Matrix::FromVector(2, 2, {3, 4, 5, 6});
  Matrix c = ConcatCols({&a, &b});
  EXPECT_TRUE(AllClose(c, Matrix::FromVector(2, 3, {1, 3, 4, 2, 5, 6}), 0.0f));
  EXPECT_TRUE(AllClose(SliceCols(c, 0, 1), a, 0.0f));
  EXPECT_TRUE(AllClose(SliceCols(c, 1, 3), b, 0.0f));
}

TEST(KernelsTest, SliceRows) {
  Matrix a = Matrix::FromVector(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(SliceRows(a, 1, 3),
                       Matrix::FromVector(2, 2, {3, 4, 5, 6}), 0.0f));
}

TEST(KernelsTest, TopKMaskSelectsLargest) {
  Matrix a = Matrix::FromVector(2, 4, {0.1f, 0.9f, 0.5f, 0.3f,
                                       4.0f, 3.0f, 2.0f, 1.0f});
  Matrix mask = TopKMaskRows(a, 2);
  EXPECT_TRUE(AllClose(mask, Matrix::FromVector(2, 4, {0, 1, 1, 0,
                                                       1, 1, 0, 0}), 0.0f));
}

TEST(KernelsTest, TopKMaskFullKeepsAll) {
  Matrix a = Matrix::FromVector(1, 3, {1, 2, 3});
  EXPECT_TRUE(AllClose(TopKMaskRows(a, 3), Matrix::Full(1, 3, 1.0f), 0.0f));
}

TEST(KernelsDeathTest, ShapeMismatchChecks) {
  Matrix a(2, 3), b(3, 3);
  EXPECT_DEATH(Add(a, b), "shape mismatch");
  EXPECT_DEATH(MatMul(a, Matrix(2, 2)), "MatMul");
}

}  // namespace
}  // namespace awmoe
