// Regression + property suite for the workspace-based inference API
// (Ranker::ScoreInto / GateInto): the kernel path must reproduce the
// autograd-backed InferenceLogits BIT FOR BIT for all four rankers and
// every gate configuration, and both paths must keep per-row results
// independent of micro-batch composition (shuffled session fusion,
// varying padding) — the invariant that lets the serving engine fuse
// sessions freely.

#include <algorithm>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "mat/kernels.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "nn/inference.h"
#include "util/rng.h"

namespace awmoe {
namespace {

// This whole suite compares ScoreInto against the autograd-backed
// InferenceLogits BITWISE, so it must run on the reference kernel tier
// regardless of what the host CPU offers. The fast tier's
// epsilon-bounded agreement is covered by kernel_tier_test.cc.
const bool kPinnedReferenceTier = [] {
  SetKernelTier(KernelTier::kReference);
  return true;
}();

DatasetMeta TestMeta(bool recommendation) {
  DatasetMeta meta;
  meta.num_items = 60;
  meta.num_cats = 7;
  meta.num_brands = 21;
  meta.num_shops = 9;
  meta.num_queries = 14;
  meta.max_seq_len = 6;
  meta.recommendation_mode = recommendation;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

/// One synthetic session: `items` candidates sharing user/query context,
/// history length `hist` (varying padding across sessions).
std::vector<Example> MakeSession(uint64_t seed, int64_t session_id,
                                 int64_t items, int64_t hist) {
  Rng rng(seed);
  std::vector<Example> session;
  std::vector<int64_t> behavior_items, behavior_cats, behavior_brands;
  std::vector<float> behavior_attrs;
  for (int64_t j = 0; j < hist; ++j) {
    behavior_items.push_back(rng.UniformInt(1, 59));
    behavior_cats.push_back(rng.UniformInt(1, 6));
    behavior_brands.push_back(rng.UniformInt(1, 20));
    behavior_attrs.push_back(static_cast<float>(rng.Normal()));
    behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
    behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
  }
  const int64_t query_id = rng.UniformInt(1, 13);
  const int64_t query_cat = rng.UniformInt(1, 6);
  const int64_t user_id = rng.UniformInt(1, 100);
  const int64_t age = rng.UniformInt(0, 2);
  for (int64_t i = 0; i < items; ++i) {
    Example ex;
    ex.behavior_items = behavior_items;
    ex.behavior_cats = behavior_cats;
    ex.behavior_brands = behavior_brands;
    ex.behavior_attrs = behavior_attrs;
    ex.target_item = rng.UniformInt(1, 59);
    ex.target_cat = rng.UniformInt(1, 6);
    ex.target_brand = rng.UniformInt(1, 20);
    ex.target_shop = rng.UniformInt(1, 8);
    for (int64_t c = 0; c < Example::kItemAttrs; ++c) {
      ex.target_attrs[c] = static_cast<float>(rng.Normal());
    }
    ex.query_id = query_id;
    ex.query_cat = query_cat;
    ex.user_id = user_id;
    ex.age_segment = age;
    ex.session_id = session_id;
    ex.numeric.resize(kNumNumericFeatures);
    for (float& v : ex.numeric) v = static_cast<float>(rng.Normal());
    session.push_back(std::move(ex));
  }
  return session;
}

/// Sessions with deliberately different history lengths (0 = all-padding
/// user) and candidate counts.
std::vector<std::vector<Example>> MakeSessions(uint64_t seed) {
  std::vector<std::vector<Example>> sessions;
  const int64_t hists[] = {0, 2, 6, 4, 1};
  const int64_t items[] = {3, 1, 5, 2, 4};
  for (int64_t s = 0; s < 5; ++s) {
    sessions.push_back(
        MakeSession(seed + static_cast<uint64_t>(s) * 97, 100 + s,
                    items[s], hists[s]));
  }
  return sessions;
}

Batch Collate(const std::vector<const Example*>& items,
              const DatasetMeta& meta) {
  return CollateBatch(items, meta, nullptr);
}

std::vector<const Example*> Flatten(
    const std::vector<std::vector<Example>>& sessions) {
  std::vector<const Example*> flat;
  for (const auto& session : sessions) {
    for (const Example& ex : session) flat.push_back(&ex);
  }
  return flat;
}

struct NamedRanker {
  std::string label;
  std::unique_ptr<Ranker> model;
};

std::vector<NamedRanker> MakeRankers(const DatasetMeta& meta) {
  std::vector<NamedRanker> rankers;
  {
    Rng rng(11);
    rankers.push_back(
        {"DNN", std::make_unique<DnnRanker>(meta, TinyDims(), &rng)});
  }
  {
    Rng rng(12);
    rankers.push_back(
        {"DIN", std::make_unique<DinRanker>(meta, TinyDims(), &rng)});
  }
  {
    Rng rng(13);
    rankers.push_back({"Category-MoE", std::make_unique<CategoryMoeRanker>(
                                           meta, TinyDims(), &rng)});
  }
  {
    Rng rng(14);
    AwMoeConfig config;
    config.dims = TinyDims();
    rankers.push_back(
        {"AW-MoE", std::make_unique<AwMoeRanker>(meta, config, &rng)});
  }
  return rankers;
}

std::vector<float> ScoreIntoVector(Ranker* model, const Batch& batch,
                                   const SessionGate* gate,
                                   InferenceWorkspace* workspace) {
  std::vector<float> out(static_cast<size_t>(batch.size));
  model->ScoreInto(batch, gate, workspace, out);
  return out;
}

class InferencePathTest : public ::testing::TestWithParam<bool> {};

// The acceptance gate: ScoreInto == InferenceLogits, bit for bit, for
// every ranker in both dataset modes, across batch sizes sharing one
// workspace (buffers must not carry state between batches).
TEST_P(InferencePathTest, ScoreIntoMatchesInferenceLogitsBitwise) {
  const DatasetMeta meta = TestMeta(GetParam());
  auto sessions = MakeSessions(/*seed=*/500);
  auto flat = Flatten(sessions);
  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(
        static_cast<int64_t>(flat.size()));
    // Deliberately interleave batch sizes — one workspace serves all of
    // them, so stale buffer contents from a bigger batch would show up.
    const std::vector<std::vector<const Example*>> slices = {
        flat,
        {flat[0]},
        {flat.begin(), flat.begin() + 4},
        flat,
    };
    for (const auto& slice : slices) {
      Batch batch = Collate(slice, meta);
      Matrix want = ranker.model->InferenceLogits(batch);
      std::vector<float> got =
          ScoreIntoVector(ranker.model.get(), batch, nullptr,
                          workspace.get());
      ASSERT_EQ(static_cast<int64_t>(got.size()), batch.size);
      for (int64_t i = 0; i < batch.size; ++i) {
        EXPECT_EQ(got[static_cast<size_t>(i)], want(i, 0))
            << ranker.label << " row " << i << " of " << batch.size;
      }
    }
  }
}

// Row independence under micro-batch fusion: every session's rows are
// bitwise-invariant to which other sessions share the batch and in what
// order — for BOTH inference paths.
TEST_P(InferencePathTest, RowsIndependentOfBatchCompositionBothPaths) {
  const DatasetMeta meta = TestMeta(GetParam());
  auto sessions = MakeSessions(/*seed=*/900);
  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(64);
    // Reference: each session scored alone.
    std::vector<std::vector<float>> solo_legacy, solo_kernel;
    for (const auto& session : sessions) {
      std::vector<const Example*> items;
      for (const Example& ex : session) items.push_back(&ex);
      Batch batch = Collate(items, meta);
      Matrix logits = ranker.model->InferenceLogits(batch);
      std::vector<float> legacy(static_cast<size_t>(batch.size));
      for (int64_t i = 0; i < batch.size; ++i) {
        legacy[static_cast<size_t>(i)] = logits(i, 0);
      }
      solo_legacy.push_back(std::move(legacy));
      solo_kernel.push_back(
          ScoreIntoVector(ranker.model.get(), batch, nullptr,
                          workspace.get()));
    }
    // Fused micro-batches in several shuffled session orders.
    std::vector<size_t> order(sessions.size());
    std::iota(order.begin(), order.end(), size_t{0});
    for (int round = 0; round < 4; ++round) {
      std::vector<const Example*> fused;
      std::vector<std::pair<size_t, size_t>> row_map;  // (session, row).
      for (size_t s : order) {
        for (size_t i = 0; i < sessions[s].size(); ++i) {
          fused.push_back(&sessions[s][i]);
          row_map.emplace_back(s, i);
        }
      }
      Batch batch = Collate(fused, meta);
      Matrix legacy = ranker.model->InferenceLogits(batch);
      std::vector<float> kernel =
          ScoreIntoVector(ranker.model.get(), batch, nullptr,
                          workspace.get());
      for (size_t r = 0; r < row_map.size(); ++r) {
        const auto [s, i] = row_map[r];
        EXPECT_EQ(legacy(static_cast<int64_t>(r), 0), solo_legacy[s][i])
            << ranker.label << " legacy row " << r << " round " << round;
        EXPECT_EQ(kernel[r], solo_kernel[s][i])
            << ranker.label << " kernel row " << r << " round " << round;
      }
      std::mt19937 gen(static_cast<unsigned>(round + 1));
      std::shuffle(order.begin(), order.end(), gen);
    }
  }
}

// The §III-F gate argument: ScoreInto with an externally supplied gate
// must reproduce the legacy InferenceLogitsWithGate bitwise — full
// per-row gates and the broadcast single-row form.
TEST(InferencePathGateTest, SessionGateMatchesLegacyWithGateBitwise) {
  const DatasetMeta meta = TestMeta(false);
  Rng rng(21);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);

  auto session = MakeSession(/*seed=*/77, /*session_id=*/1, /*items=*/6,
                             /*hist=*/4);
  std::vector<const Example*> items;
  for (const Example& ex : session) items.push_back(&ex);
  Batch batch = CollateBatch(items, meta, nullptr);
  auto workspace = model.CreateInferenceWorkspace(16);

  // Gate rows from the kernel path must equal InferenceGate bitwise.
  const int64_t k = model.SessionGateWidth();
  Matrix gate = model.InferenceGate(batch);
  std::vector<float> gate_rows(static_cast<size_t>(batch.size * k));
  model.GateInto(batch, workspace.get(), gate_rows);
  for (int64_t i = 0; i < batch.size; ++i) {
    for (int64_t c = 0; c < k; ++c) {
      EXPECT_EQ(gate_rows[static_cast<size_t>(i * k + c)], gate(i, c))
          << "gate row " << i << " col " << c;
    }
  }

  // Full [B, K] gate.
  Matrix want = model.InferenceLogitsWithGate(batch, gate);
  SessionGate full{gate_rows.data(), batch.size, k};
  std::vector<float> got =
      ScoreIntoVector(&model, batch, &full, workspace.get());
  for (int64_t i = 0; i < batch.size; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], want(i, 0)) << "row " << i;
  }

  // Broadcast single row (session-constant gate: row 0 serves all).
  Matrix row0 = SliceRows(gate, 0, 1);
  Matrix want_broadcast = model.InferenceLogitsWithGate(batch, row0);
  SessionGate broadcast{gate_rows.data(), 1, k};
  std::vector<float> got_broadcast =
      ScoreIntoVector(&model, batch, &broadcast, workspace.get());
  for (int64_t i = 0; i < batch.size; ++i) {
    EXPECT_EQ(got_broadcast[static_cast<size_t>(i)], want_broadcast(i, 0))
        << "broadcast row " << i;
  }
}

// Category-MoE's gate is session-constant in search mode too; its
// ScoreInto gate path must match scoring without one bitwise (same
// gate rows replicated).
TEST(InferencePathGateTest, CategoryMoeGateReuseMatchesDirectBitwise) {
  const DatasetMeta meta = TestMeta(false);
  Rng rng(31);
  CategoryMoeRanker model(meta, TinyDims(), &rng);
  EXPECT_TRUE(model.SupportsSessionGateReuse(meta));
  EXPECT_FALSE(
      model.SupportsSessionGateReuse(TestMeta(/*recommendation=*/true)));

  auto session = MakeSession(/*seed=*/99, /*session_id=*/2, /*items=*/5,
                             /*hist=*/3);
  std::vector<const Example*> items;
  for (const Example& ex : session) items.push_back(&ex);
  Batch batch = CollateBatch(items, meta, nullptr);
  auto workspace = model.CreateInferenceWorkspace(16);

  std::vector<float> direct =
      ScoreIntoVector(&model, batch, nullptr, workspace.get());

  const int64_t k = model.SessionGateWidth();
  std::vector<float> gate_rows(static_cast<size_t>(batch.size * k));
  model.GateInto(batch, workspace.get(), gate_rows);
  // All rows of one session share the query category -> identical.
  for (int64_t i = 1; i < batch.size; ++i) {
    for (int64_t c = 0; c < k; ++c) {
      EXPECT_EQ(gate_rows[static_cast<size_t>(i * k + c)],
                gate_rows[static_cast<size_t>(c)]);
    }
  }
  SessionGate gate{gate_rows.data(), batch.size, k};
  std::vector<float> with_gate =
      ScoreIntoVector(&model, batch, &gate, workspace.get());
  for (int64_t i = 0; i < batch.size; ++i) {
    EXPECT_EQ(with_gate[static_cast<size_t>(i)],
              direct[static_cast<size_t>(i)])
        << "row " << i;
  }
}

// Every gate-network ablation/extension config must ride the kernel
// path bitwise (softmax normalisation, sparse top-k, pooled modes).
TEST(InferencePathGateTest, GateConfigVariantsMatchBitwise) {
  const DatasetMeta meta = TestMeta(false);
  auto sessions = MakeSessions(/*seed=*/1300);
  auto flat = Flatten(sessions);
  Batch batch = CollateBatch(flat, meta, nullptr);

  struct Case {
    const char* label;
    GateConfig gate;
  };
  std::vector<Case> cases;
  cases.push_back({"full", {}});
  {
    GateConfig g;
    g.softmax = true;
    cases.push_back({"softmax", g});
  }
  {
    GateConfig g;
    g.top_k = 2;
    cases.push_back({"top2", g});
  }
  {
    GateConfig g;
    g.mode = GateMode::kBaseSumPool;
    cases.push_back({"base", g});
  }
  {
    GateConfig g;
    g.mode = GateMode::kBaseGateUnit;
    cases.push_back({"base+gu", g});
  }
  {
    GateConfig g;
    g.mode = GateMode::kBaseActivationUnit;
    cases.push_back({"base+au", g});
  }
  for (const Case& c : cases) {
    Rng rng(51);
    AwMoeConfig config;
    config.dims = TinyDims();
    config.gate = c.gate;
    AwMoeRanker model(meta, config, &rng);
    auto workspace =
        model.CreateInferenceWorkspace(static_cast<int64_t>(flat.size()));
    Matrix want = model.InferenceLogits(batch);
    std::vector<float> got =
        ScoreIntoVector(&model, batch, nullptr, workspace.get());
    for (int64_t i = 0; i < batch.size; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(i)], want(i, 0))
          << c.label << " row " << i;
    }
  }
}

// ---------------------------------------------------------------------
// The session feature store split (level-2 cache contract):
// EncodeSessionInto + ScoreWithSessionInto == fused ScoreInto ==
// InferenceLogits, bit for bit.
// ---------------------------------------------------------------------

// Acceptance gate of the split path for every encoding-reusing ranker
// (AW-MoE, DIN, DNN) in both dataset modes, across interleaved batch
// sizes sharing one workspace.
TEST_P(InferencePathTest, SplitEncodeScoreMatchesFusedBitwise) {
  const DatasetMeta meta = TestMeta(GetParam());
  auto sessions = MakeSessions(/*seed=*/2100);
  auto flat = Flatten(sessions);
  int covered = 0;
  for (NamedRanker& ranker : MakeRankers(meta)) {
    const int64_t width = ranker.model->SessionEncodingWidth();
    if (width == 0 || !ranker.model->SupportsSessionEncodingReuse(meta)) {
      continue;
    }
    ++covered;
    auto workspace = ranker.model->CreateInferenceWorkspace(
        static_cast<int64_t>(flat.size()));
    const std::vector<std::vector<const Example*>> slices = {
        flat,
        {flat[0]},
        {flat.begin(), flat.begin() + 4},
        flat,
    };
    for (const auto& slice : slices) {
      Batch batch = Collate(slice, meta);
      Matrix want = ranker.model->InferenceLogits(batch);
      std::vector<float> fused =
          ScoreIntoVector(ranker.model.get(), batch, nullptr,
                          workspace.get());
      std::vector<float> encoding(static_cast<size_t>(batch.size * width));
      ranker.model->EncodeSessionInto(batch, workspace.get(), encoding);
      SessionEncoding enc{encoding.data(), batch.size, width};
      std::vector<float> split(static_cast<size_t>(batch.size));
      ranker.model->ScoreWithSessionInto(batch, nullptr, &enc,
                                         workspace.get(), split);
      for (int64_t i = 0; i < batch.size; ++i) {
        EXPECT_EQ(split[static_cast<size_t>(i)], want(i, 0))
            << ranker.label << " split-vs-legacy row " << i << " of "
            << batch.size;
        EXPECT_EQ(split[static_cast<size_t>(i)],
                  fused[static_cast<size_t>(i)])
            << ranker.label << " split-vs-fused row " << i << " of "
            << batch.size;
      }
    }
  }
  // AW-MoE, DIN and DNN must all have been exercised.
  EXPECT_GE(covered, 3);
}

// The serving engine's actual replay shape: ONE probe row (the
// session's first item) encoded on a 1-row batch, broadcast across
// every candidate of the session — exactly how a level-2 cache hit
// feeds the candidate-dependent tail. Must still be bitwise-fused.
TEST_P(InferencePathTest, ProbeRowBroadcastEncodingMatchesFusedBitwise) {
  const DatasetMeta meta = TestMeta(GetParam());
  auto sessions = MakeSessions(/*seed=*/2400);
  for (NamedRanker& ranker : MakeRankers(meta)) {
    const int64_t width = ranker.model->SessionEncodingWidth();
    if (width == 0 || !ranker.model->SupportsSessionEncodingReuse(meta)) {
      continue;
    }
    auto workspace = ranker.model->CreateInferenceWorkspace(16);
    for (const auto& session : sessions) {
      std::vector<const Example*> items;
      for (const Example& ex : session) items.push_back(&ex);
      Batch batch = Collate(items, meta);
      std::vector<float> fused =
          ScoreIntoVector(ranker.model.get(), batch, nullptr,
                          workspace.get());

      // Per-row encodings of one session are identical (the property
      // SupportsSessionEncodingReuse declares)...
      std::vector<float> rows(static_cast<size_t>(batch.size * width));
      ranker.model->EncodeSessionInto(batch, workspace.get(), rows);
      for (int64_t i = 1; i < batch.size; ++i) {
        for (int64_t c = 0; c < width; ++c) {
          ASSERT_EQ(rows[static_cast<size_t>(i * width + c)],
                    rows[static_cast<size_t>(c)])
              << ranker.label << " row " << i << " col " << c;
        }
      }

      // ...so a 1-row probe encode broadcast over the batch reproduces
      // the fused scores bitwise.
      Batch probe = Collate({items[0]}, meta);
      std::vector<float> probe_row(static_cast<size_t>(width));
      ranker.model->EncodeSessionInto(probe, workspace.get(), probe_row);
      SessionEncoding broadcast{probe_row.data(), 1, width};
      std::vector<float> replay(static_cast<size_t>(batch.size));
      ranker.model->ScoreWithSessionInto(batch, nullptr, &broadcast,
                                         workspace.get(), replay);
      for (int64_t i = 0; i < batch.size; ++i) {
        EXPECT_EQ(replay[static_cast<size_t>(i)],
                  fused[static_cast<size_t>(i)])
            << ranker.label << " broadcast row " << i;
      }
    }
  }
}

// Gate reuse and encoding reuse composed — the serving engine passes
// both when a request hits the gate cache AND the feature store.
TEST(InferencePathSessionEncodingTest, GatePlusEncodingMatchesFusedBitwise) {
  const DatasetMeta meta = TestMeta(false);
  Rng rng(61);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);
  ASSERT_TRUE(model.SupportsSessionGateReuse(meta));
  ASSERT_TRUE(model.SupportsSessionEncodingReuse(meta));

  auto session = MakeSession(/*seed=*/88, /*session_id=*/3, /*items=*/6,
                             /*hist=*/5);
  std::vector<const Example*> items;
  for (const Example& ex : session) items.push_back(&ex);
  Batch batch = CollateBatch(items, meta, nullptr);
  auto workspace = model.CreateInferenceWorkspace(16);

  std::vector<float> fused =
      ScoreIntoVector(&model, batch, nullptr, workspace.get());

  const int64_t k = model.SessionGateWidth();
  std::vector<float> gate_rows(static_cast<size_t>(batch.size * k));
  model.GateInto(batch, workspace.get(), gate_rows);
  const int64_t w = model.SessionEncodingWidth();
  std::vector<float> enc_rows(static_cast<size_t>(batch.size * w));
  model.EncodeSessionInto(batch, workspace.get(), enc_rows);

  SessionGate gate{gate_rows.data(), batch.size, k};
  SessionEncoding enc{enc_rows.data(), batch.size, w};
  std::vector<float> both(static_cast<size_t>(batch.size));
  model.ScoreWithSessionInto(batch, &gate, &enc, workspace.get(), both);
  for (int64_t i = 0; i < batch.size; ++i) {
    EXPECT_EQ(both[static_cast<size_t>(i)], fused[static_cast<size_t>(i)])
        << "row " << i;
  }
}

// A null encoding must degrade ScoreWithSessionInto to the fused path
// verbatim (the engine relies on this when the feature store is off).
TEST(InferencePathSessionEncodingTest, NullEncodingFallsBackToFused) {
  const DatasetMeta meta = TestMeta(false);
  auto sessions = MakeSessions(/*seed=*/2700);
  auto flat = Flatten(sessions);
  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(
        static_cast<int64_t>(flat.size()));
    Batch batch = Collate(flat, meta);
    std::vector<float> fused =
        ScoreIntoVector(ranker.model.get(), batch, nullptr,
                        workspace.get());
    std::vector<float> null_enc(static_cast<size_t>(batch.size));
    ranker.model->ScoreWithSessionInto(batch, nullptr, nullptr,
                                       workspace.get(), null_enc);
    for (int64_t i = 0; i < batch.size; ++i) {
      EXPECT_EQ(null_enc[static_cast<size_t>(i)],
                fused[static_cast<size_t>(i)])
          << ranker.label << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, InferencePathTest, ::testing::Bool());

}  // namespace
}  // namespace awmoe
