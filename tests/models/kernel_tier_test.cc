// Kernel-tier regression suite: the fast (AVX2/FMA) tier must agree
// with the reference tier to an epsilon/ULP bound for every ranker,
// both gate modes and a sweep of batch sizes; the forced-scalar
// dispatch path must stay bitwise-identical to the reference kernels;
// and the fast tier must keep per-row results independent of
// micro-batch composition (the invariant the serving engine's session
// fusion relies on). Also holds the regression tests for the arena
// alignment/Rewind fixes and the row-parallel matmul mode.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "nn/inference.h"
#include "util/rng.h"

namespace awmoe {
namespace {

DatasetMeta TestMeta(bool recommendation) {
  DatasetMeta meta;
  meta.num_items = 60;
  meta.num_cats = 7;
  meta.num_brands = 21;
  meta.num_shops = 9;
  meta.num_queries = 14;
  meta.max_seq_len = 6;
  meta.recommendation_mode = recommendation;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

std::vector<Example> MakeSession(uint64_t seed, int64_t session_id,
                                 int64_t items, int64_t hist) {
  Rng rng(seed);
  std::vector<Example> session;
  std::vector<int64_t> behavior_items, behavior_cats, behavior_brands;
  std::vector<float> behavior_attrs;
  for (int64_t j = 0; j < hist; ++j) {
    behavior_items.push_back(rng.UniformInt(1, 59));
    behavior_cats.push_back(rng.UniformInt(1, 6));
    behavior_brands.push_back(rng.UniformInt(1, 20));
    behavior_attrs.push_back(static_cast<float>(rng.Normal()));
    behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
    behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
  }
  const int64_t query_id = rng.UniformInt(1, 13);
  const int64_t query_cat = rng.UniformInt(1, 6);
  const int64_t user_id = rng.UniformInt(1, 100);
  const int64_t age = rng.UniformInt(0, 2);
  for (int64_t i = 0; i < items; ++i) {
    Example ex;
    ex.behavior_items = behavior_items;
    ex.behavior_cats = behavior_cats;
    ex.behavior_brands = behavior_brands;
    ex.behavior_attrs = behavior_attrs;
    ex.target_item = rng.UniformInt(1, 59);
    ex.target_cat = rng.UniformInt(1, 6);
    ex.target_brand = rng.UniformInt(1, 20);
    ex.target_shop = rng.UniformInt(1, 8);
    for (int64_t c = 0; c < Example::kItemAttrs; ++c) {
      ex.target_attrs[c] = static_cast<float>(rng.Normal());
    }
    ex.query_id = query_id;
    ex.query_cat = query_cat;
    ex.user_id = user_id;
    ex.age_segment = age;
    ex.session_id = session_id;
    ex.numeric.resize(kNumNumericFeatures);
    for (float& v : ex.numeric) v = static_cast<float>(rng.Normal());
    session.push_back(std::move(ex));
  }
  return session;
}

struct NamedRanker {
  std::string label;
  std::unique_ptr<Ranker> model;
};

std::vector<NamedRanker> MakeRankers(const DatasetMeta& meta) {
  std::vector<NamedRanker> rankers;
  {
    Rng rng(11);
    rankers.push_back(
        {"DNN", std::make_unique<DnnRanker>(meta, TinyDims(), &rng)});
  }
  {
    Rng rng(12);
    rankers.push_back(
        {"DIN", std::make_unique<DinRanker>(meta, TinyDims(), &rng)});
  }
  {
    Rng rng(13);
    rankers.push_back({"Category-MoE", std::make_unique<CategoryMoeRanker>(
                                           meta, TinyDims(), &rng)});
  }
  {
    Rng rng(14);
    AwMoeConfig config;
    config.dims = TinyDims();
    rankers.push_back(
        {"AW-MoE", std::make_unique<AwMoeRanker>(meta, config, &rng)});
  }
  return rankers;
}

/// ULP distance between two finite floats of the same sign regime
/// (monotone integer mapping of the IEEE ordering).
int64_t UlpDistance(float a, float b) {
  const auto key = [](float x) {
    int32_t bits = std::bit_cast<int32_t>(x);
    return bits >= 0 ? static_cast<int64_t>(bits)
                     : -static_cast<int64_t>(bits & 0x7fffffff);
  };
  return std::abs(key(a) - key(b));
}

/// The fast tier's acceptance bound vs the reference tier: a handful
/// of reassociated FMA sums through a few layers. Either a small
/// absolute gap (values near 0) or a tight ULP budget must hold.
::testing::AssertionResult TierClose(float fast, float reference) {
  if (!std::isfinite(fast) || !std::isfinite(reference)) {
    return ::testing::AssertionFailure()
           << "non-finite: fast=" << fast << " reference=" << reference;
  }
  const double abs_err = std::abs(static_cast<double>(fast) - reference);
  const int64_t ulps = UlpDistance(fast, reference);
  if (abs_err <= 1e-5 || ulps <= 512) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "fast=" << fast << " reference=" << reference
         << " abs_err=" << abs_err << " ulps=" << ulps;
}

std::vector<float> ScoreAtTier(Ranker* model, const Batch& batch,
                               InferenceWorkspace* workspace,
                               KernelTier tier) {
  ScopedKernelTier pin(tier);
  std::vector<float> out(static_cast<size_t>(batch.size));
  model->ScoreInto(batch, nullptr, workspace, out);
  return out;
}

// ---------------------------------------------------------------------
// Fast-vs-reference agreement.
// ---------------------------------------------------------------------

class KernelTierTest : public ::testing::TestWithParam<bool> {};

// The tentpole acceptance gate: fast tier within epsilon of the
// reference tier for all four rankers x both dataset (gate) modes x
// batch sizes {1, 8, 64, 256}.
TEST_P(KernelTierTest, FastTierMatchesReferenceWithinEpsilon) {
  if (!FastKernelTierAvailable()) {
    GTEST_SKIP() << "fast kernel tier unavailable on this build/CPU";
  }
  const DatasetMeta meta = TestMeta(GetParam());
  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(256);
    for (int64_t batch_size : {1, 8, 64, 256}) {
      auto session = MakeSession(/*seed=*/1000 + batch_size, /*session_id=*/7,
                                 /*items=*/batch_size, /*hist=*/4);
      std::vector<const Example*> items;
      for (const Example& ex : session) items.push_back(&ex);
      Batch batch = CollateBatch(items, meta, nullptr);
      const std::vector<float> reference = ScoreAtTier(
          ranker.model.get(), batch, workspace.get(), KernelTier::kReference);
      const std::vector<float> fast = ScoreAtTier(
          ranker.model.get(), batch, workspace.get(), KernelTier::kFast);
      for (int64_t i = 0; i < batch.size; ++i) {
        EXPECT_TRUE(TierClose(fast[static_cast<size_t>(i)],
                              reference[static_cast<size_t>(i)]))
            << ranker.label << " batch " << batch_size << " row " << i;
      }
    }
  }
}

// Gate rows ride the same kernels: AW-MoE's GateInto must agree across
// tiers to the same bound.
TEST_P(KernelTierTest, GateIntoMatchesAcrossTiers) {
  if (!FastKernelTierAvailable()) {
    GTEST_SKIP() << "fast kernel tier unavailable on this build/CPU";
  }
  const DatasetMeta meta = TestMeta(GetParam());
  Rng rng(21);
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);
  auto session = MakeSession(/*seed=*/177, /*session_id=*/3, /*items=*/9,
                             /*hist=*/5);
  std::vector<const Example*> items;
  for (const Example& ex : session) items.push_back(&ex);
  Batch batch = CollateBatch(items, meta, nullptr);
  auto workspace = model.CreateInferenceWorkspace(16);

  const int64_t k = model.SessionGateWidth();
  std::vector<float> reference(static_cast<size_t>(batch.size * k));
  std::vector<float> fast(reference.size());
  {
    ScopedKernelTier pin(KernelTier::kReference);
    model.GateInto(batch, workspace.get(), reference);
  }
  {
    ScopedKernelTier pin(KernelTier::kFast);
    model.GateInto(batch, workspace.get(), fast);
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(TierClose(fast[i], reference[i])) << "gate element " << i;
  }
}

// The serving engine fuses arbitrary session subsets into micro-batches
// and expects a given row to score identically no matter who shares the
// batch. The fast tier's masked tails are designed to preserve exactly
// this: solo-vs-fused must agree BITWISE at the fast tier.
TEST_P(KernelTierTest, FastTierRowsIndependentOfBatchComposition) {
  if (!FastKernelTierAvailable()) {
    GTEST_SKIP() << "fast kernel tier unavailable on this build/CPU";
  }
  const DatasetMeta meta = TestMeta(GetParam());
  ScopedKernelTier pin(KernelTier::kFast);
  const int64_t hists[] = {0, 2, 6, 4, 1};
  const int64_t items[] = {3, 1, 5, 2, 4};
  std::vector<std::vector<Example>> sessions;
  for (int64_t s = 0; s < 5; ++s) {
    sessions.push_back(MakeSession(2200 + static_cast<uint64_t>(s) * 97,
                                   300 + s, items[s], hists[s]));
  }
  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(32);
    std::vector<std::vector<float>> solo;
    for (const auto& session : sessions) {
      std::vector<const Example*> ptrs;
      for (const Example& ex : session) ptrs.push_back(&ex);
      Batch batch = CollateBatch(ptrs, meta, nullptr);
      std::vector<float> out(static_cast<size_t>(batch.size));
      ranker.model->ScoreInto(batch, nullptr, workspace.get(), out);
      solo.push_back(std::move(out));
    }
    // Fused in reverse session order: different rows, same sessions.
    std::vector<const Example*> fused;
    for (auto it = sessions.rbegin(); it != sessions.rend(); ++it) {
      for (const Example& ex : *it) fused.push_back(&ex);
    }
    Batch batch = CollateBatch(fused, meta, nullptr);
    std::vector<float> got(static_cast<size_t>(batch.size));
    ranker.model->ScoreInto(batch, nullptr, workspace.get(), got);
    size_t row = 0;
    for (size_t s = sessions.size(); s-- > 0;) {
      for (float want : solo[s]) {
        EXPECT_EQ(got[row], want)
            << ranker.label << " fused row " << row << " (session " << s
            << ")";
        ++row;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, KernelTierTest, ::testing::Bool());

// ---------------------------------------------------------------------
// Dispatch resolution + forced-scalar bitwise guarantees.
// ---------------------------------------------------------------------

TEST(KernelDispatchTest, ResolveKernelTierRules) {
  // Unset / "" / "0" mean "no override": fast when available.
  EXPECT_EQ(ResolveKernelTier(nullptr, true), KernelTier::kFast);
  EXPECT_EQ(ResolveKernelTier("", true), KernelTier::kFast);
  EXPECT_EQ(ResolveKernelTier("0", true), KernelTier::kFast);
  // Any other value forces the reference tier.
  EXPECT_EQ(ResolveKernelTier("1", true), KernelTier::kReference);
  EXPECT_EQ(ResolveKernelTier("true", true), KernelTier::kReference);
  // Without a fast tier (non-AVX2 CPU or build) everything is reference.
  EXPECT_EQ(ResolveKernelTier(nullptr, false), KernelTier::kReference);
  EXPECT_EQ(ResolveKernelTier("1", false), KernelTier::kReference);
}

TEST(KernelDispatchTest, TableMetadata) {
  const KernelDispatchTable& reference =
      GetKernelTable(KernelTier::kReference);
  EXPECT_STREQ(reference.name, "reference-scalar");
  EXPECT_TRUE(reference.bitwise_reference);
  EXPECT_STREQ(KernelTierName(KernelTier::kReference), "reference-scalar");
  if (FastKernelTierAvailable()) {
    const KernelDispatchTable& fast = GetKernelTable(KernelTier::kFast);
    EXPECT_STREQ(fast.name, "avx2-fma");
    EXPECT_FALSE(fast.bitwise_reference);
  }
  EXPECT_EQ(MatMulFlops(8, 128, 128), 2.0 * 8 * 128 * 128);
}

// The forced-scalar path is the non-AVX2 fallback: dispatching through
// the reference table must reproduce the legacy Var-graph forward
// BITWISE (not just within epsilon) — the same guarantee the direct
// kernels gave before the dispatch layer existed.
TEST(KernelDispatchTest, ForcedScalarDispatchIsBitwiseReference) {
  ScopedKernelTier pin(KernelTier::kReference);
  for (const bool recommendation : {false, true}) {
    const DatasetMeta meta = TestMeta(recommendation);
    for (NamedRanker& ranker : MakeRankers(meta)) {
      auto session = MakeSession(/*seed=*/3100, /*session_id=*/5,
                                 /*items=*/7, /*hist=*/3);
      std::vector<const Example*> items;
      for (const Example& ex : session) items.push_back(&ex);
      Batch batch = CollateBatch(items, meta, nullptr);
      auto workspace = ranker.model->CreateInferenceWorkspace(8);
      Matrix want = ranker.model->InferenceLogits(batch);
      std::vector<float> got(static_cast<size_t>(batch.size));
      ranker.model->ScoreInto(batch, nullptr, workspace.get(), got);
      for (int64_t i = 0; i < batch.size; ++i) {
        EXPECT_EQ(got[static_cast<size_t>(i)], want(i, 0))
            << ranker.label << " row " << i;
      }
    }
  }
}

// Reference-tier SigmoidSpanInto == StableSigmoid element for element;
// fast-tier within epsilon of it, and position-independent (the same
// value produces the same bits in a full vector lane and in a masked
// tail lane).
TEST(KernelDispatchTest, SigmoidSpanTierContracts) {
  std::vector<float> x;
  for (float v : {-100.0f, -88.5f, -20.0f, -3.25f, -1.0f, -0.5f, -0.0f,
                  0.0f, 0.5f, 1.0f, 3.25f, 20.0f, 88.5f, 100.0f}) {
    x.push_back(v);
  }
  Rng rng(5);
  while (x.size() < 37) x.push_back(static_cast<float>(rng.Normal() * 4.0));

  std::vector<float> reference(x.size());
  {
    ScopedKernelTier pin(KernelTier::kReference);
    SigmoidSpanInto(x, reference);
  }
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(reference[i], StableSigmoid(x[i])) << "x=" << x[i];
  }

  if (!FastKernelTierAvailable()) return;
  ScopedKernelTier pin(KernelTier::kFast);
  std::vector<float> fast(x.size());
  SigmoidSpanInto(x, fast);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_TRUE(TierClose(fast[i], reference[i])) << "x=" << x[i];
    EXPECT_GE(fast[i], 0.0f);
    EXPECT_LE(fast[i], 1.0f);
  }
  // Position independence: each element alone (span of 1 => pure
  // masked-tail path) must reproduce its bits from the full span.
  for (size_t i = 0; i < x.size(); ++i) {
    float solo = 0.0f;
    SigmoidSpanInto(std::span<const float>(&x[i], 1),
                    std::span<float>(&solo, 1));
    EXPECT_EQ(solo, fast[i]) << "x=" << x[i];
  }
  // In-place aliasing is part of the contract.
  std::vector<float> in_place = x;
  SigmoidSpanInto(in_place, in_place);
  EXPECT_EQ(in_place, fast);
}

// ---------------------------------------------------------------------
// Arena alignment + Rewind regression tests (satellite bugfix).
// ---------------------------------------------------------------------

TEST(InferenceArenaTest, SlabsAndRowsAre64ByteAligned) {
  InferenceArena arena;
  constexpr std::pair<int64_t, int64_t> kShapes[] = {
      {1, 1}, {3, 7}, {8, 16}, {5, 17}, {256, 33}, {2, 64}};
  for (const auto& [rows, cols] : kShapes) {
    const MatView view = arena.Alloc(rows, cols);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(view.data) %
                  AlignedBuffer::kAlignment,
              0u)
        << rows << "x" << cols;
    // Stride padded to the alignment quantum => every row aligned.
    EXPECT_EQ(view.stride % InferenceArena::kAlignFloats, 0);
    EXPECT_GE(view.stride, cols);
    for (int64_t r = 0; r < rows; ++r) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(view.row(r)) %
                    AlignedBuffer::kAlignment,
                0u)
          << rows << "x" << cols << " row " << r;
    }
  }
}

TEST(InferenceArenaTest, RewindToMarkTakenBeforeSlabSpill) {
  InferenceArena arena;
  const MatView first = arena.Alloc(4, 8);
  const size_t mark = arena.Mark();
  // Spill: materialise several more slabs past the mark.
  for (int i = 0; i < 6; ++i) arena.Alloc(16, 32);
  const size_t spilled = arena.num_slabs();
  EXPECT_GE(spilled, 7u);
  arena.Rewind(mark);
  // The mark is a slab index: post-rewind allocs must reuse the slabs
  // (and their grown capacity) right after the mark, not leak new ones.
  const MatView reused = arena.Alloc(16, 32);
  EXPECT_EQ(arena.num_slabs(), spilled);
  // The pre-mark slab is untouched by the rewind.
  EXPECT_NE(arena.Alloc(4, 8).data, first.data);
  // Reset rewinds to the first slab.
  arena.Reset();
  EXPECT_EQ(arena.Alloc(4, 8).data, first.data);
  (void)reused;
}

TEST(InferenceArenaTest, WarmedSlabGrowsInPlaceOnly) {
  InferenceArena arena;
  arena.Alloc(8, 8);
  arena.Reset();
  const MatView grown = arena.Alloc(64, 64);  // Same slab, regrown.
  EXPECT_EQ(arena.num_slabs(), 1u);
  arena.Reset();
  const MatView warm = arena.Alloc(32, 32);  // Fits: no new allocation.
  EXPECT_EQ(warm.data, grown.data);
  EXPECT_EQ(arena.num_slabs(), 1u);
}

TEST(InferenceWorkspaceTest, StagingAlignedAndPreservedAcrossGrowth) {
  InferenceWorkspace workspace(/*max_candidates=*/8);
  std::span<float> small =
      workspace.Staging(InferenceWorkspace::kGateRows, 10);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(small.data()) %
                AlignedBuffer::kAlignment,
            0u);
  for (int i = 0; i < 10; ++i) small[static_cast<size_t>(i)] = float(i);
  // Growth must preserve prior contents (the serving engine stages gate
  // rows, then grows the buffer for a larger session set).
  std::span<float> grown =
      workspace.Staging(InferenceWorkspace::kGateRows, 1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(grown.data()) %
                AlignedBuffer::kAlignment,
            0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(grown[static_cast<size_t>(i)], float(i)) << i;
  }
}

// ---------------------------------------------------------------------
// Row-parallel matmul: bitwise-identical to serial at BOTH tiers.
// ---------------------------------------------------------------------

TEST(RowParallelTest, MatMulBitwiseIdenticalToSerial) {
  const int64_t m = 96, k = 37, n = 53;
  Rng rng(91);
  std::vector<float> a(static_cast<size_t>(m * k));
  for (float& v : a) v = static_cast<float>(rng.Normal());
  Matrix w(k, n);
  for (int64_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.Normal());
  }
  const ConstMatView a_view(a.data(), m, k, k);

  std::vector<KernelTier> tiers = {KernelTier::kReference};
  if (FastKernelTierAvailable()) tiers.push_back(KernelTier::kFast);
  for (const KernelTier tier : tiers) {
    ScopedKernelTier pin(tier);
    std::vector<float> serial(static_cast<size_t>(m * n));
    std::vector<float> parallel(serial.size());
    MatMulInto(a_view, w, MatView{serial.data(), m, n, n});
    SetKernelRowParallelism(4);
    MatMulInto(a_view, w, MatView{parallel.data(), m, n, n});
    SetKernelRowParallelism(0);
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << KernelTierName(tier) << " element " << i;
    }
  }
}

TEST(RowParallelTest, SettingValidatesAndRoundTrips) {
  const int before = KernelRowParallelism();
  SetKernelRowParallelism(3);
  EXPECT_EQ(KernelRowParallelism(), 3);
  SetKernelRowParallelism(0);
  EXPECT_EQ(KernelRowParallelism(), 0);
  SetKernelRowParallelism(before);
}

}  // namespace
}  // namespace awmoe
