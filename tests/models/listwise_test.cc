// The listwise reranker's acceptance suite: the workspace slate path
// (ScoreSlateInto) must reproduce the autograd-backed graph path
// (InferenceLogits) BIT FOR BIT on the reference kernel tier, a slate's
// scores must not depend on what else shares its micro-batch, Clone
// must produce an identical model, and the ListNet loss must train
// through both Trainer and ParallelTrainer with session-grouped
// batches.

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_trainer.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "models/listwise/listwise_reranker.h"
#include "nn/inference.h"
#include "util/rng.h"

namespace awmoe {
namespace {

// Bitwise graph-vs-workspace comparison needs the reference tier; the
// fast tier's slate scores are covered by the composition-independence
// test below, which holds at every tier (the attention core is always
// the scalar slate-local kernels).
const bool kPinnedReferenceTier = [] {
  SetKernelTier(KernelTier::kReference);
  return true;
}();

DatasetMeta TestMeta() {
  DatasetMeta meta;
  meta.num_items = 60;
  meta.num_cats = 7;
  meta.num_brands = 21;
  meta.num_shops = 9;
  meta.num_queries = 14;
  meta.max_seq_len = 6;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

ListwiseDims TinyListwiseDims() {
  ListwiseDims ldims;
  ldims.d_model = 8;
  ldims.num_heads = 2;
  ldims.num_layers = 2;
  ldims.ffn_hidden = {12};
  ldims.head_hidden = {6};
  ldims.max_slate_len = 16;
  return ldims;
}

/// One synthetic session (slate): `items` candidates sharing user and
/// query context, history length `hist`, alternating labels.
std::vector<Example> MakeSession(uint64_t seed, int64_t session_id,
                                 int64_t items, int64_t hist) {
  Rng rng(seed);
  std::vector<Example> session;
  std::vector<int64_t> behavior_items, behavior_cats, behavior_brands;
  std::vector<float> behavior_attrs;
  for (int64_t j = 0; j < hist; ++j) {
    behavior_items.push_back(rng.UniformInt(1, 59));
    behavior_cats.push_back(rng.UniformInt(1, 6));
    behavior_brands.push_back(rng.UniformInt(1, 20));
    behavior_attrs.push_back(static_cast<float>(rng.Normal()));
    behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
    behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
  }
  const int64_t query_id = rng.UniformInt(1, 13);
  const int64_t query_cat = rng.UniformInt(1, 6);
  const int64_t user_id = rng.UniformInt(1, 100);
  const int64_t age = rng.UniformInt(0, 2);
  for (int64_t i = 0; i < items; ++i) {
    Example ex;
    ex.behavior_items = behavior_items;
    ex.behavior_cats = behavior_cats;
    ex.behavior_brands = behavior_brands;
    ex.behavior_attrs = behavior_attrs;
    ex.target_item = rng.UniformInt(1, 59);
    ex.target_cat = rng.UniformInt(1, 6);
    ex.target_brand = rng.UniformInt(1, 20);
    ex.target_shop = rng.UniformInt(1, 8);
    for (int64_t c = 0; c < Example::kItemAttrs; ++c) {
      ex.target_attrs[c] = static_cast<float>(rng.Normal());
    }
    ex.query_id = query_id;
    ex.query_cat = query_cat;
    ex.user_id = user_id;
    ex.age_segment = age;
    ex.session_id = session_id;
    ex.label = static_cast<float>(i % 3 == 0);
    ex.numeric.resize(kNumNumericFeatures);
    for (float& v : ex.numeric) v = static_cast<float>(rng.Normal());
    session.push_back(std::move(ex));
  }
  return session;
}

/// Sessions with varying slate sizes and history lengths (0 = pure
/// padding), session ids in batch order.
std::vector<std::vector<Example>> MakeSessions(uint64_t seed) {
  std::vector<std::vector<Example>> sessions;
  const int64_t hists[] = {0, 2, 6, 4, 1};
  const int64_t items[] = {3, 1, 5, 2, 4};
  for (int64_t s = 0; s < 5; ++s) {
    sessions.push_back(MakeSession(seed + static_cast<uint64_t>(s) * 97,
                                   100 + s, items[s], hists[s]));
  }
  return sessions;
}

std::vector<const Example*> Flatten(
    const std::vector<std::vector<Example>>& sessions) {
  std::vector<const Example*> flat;
  for (const auto& session : sessions) {
    for (const Example& ex : session) flat.push_back(&ex);
  }
  return flat;
}

std::unique_ptr<ListwiseReranker> MakeModel(uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<ListwiseReranker>(TestMeta(), TinyDims(),
                                            TinyListwiseDims(), &rng);
}

std::vector<float> ScoreSlates(ListwiseReranker* model, const Batch& batch,
                               InferenceWorkspace* workspace) {
  std::vector<int64_t> starts;
  SlateStartsFromBatch(batch, &starts);
  std::vector<float> out(static_cast<size_t>(batch.size));
  model->ScoreSlateInto(batch, starts, workspace, out);
  return out;
}

TEST(ListwiseRerankerTest, SlateStartsFromBatchFindsSessionRuns) {
  auto sessions = MakeSessions(/*seed=*/900);
  Batch batch = CollateBatch(Flatten(sessions), TestMeta(), nullptr);
  std::vector<int64_t> starts;
  SlateStartsFromBatch(batch, &starts);
  // Slate sizes 3,1,5,2,4 -> starts at their prefix sums.
  EXPECT_EQ(starts, (std::vector<int64_t>{0, 3, 4, 9, 11}));
}

// The acceptance gate: ScoreSlateInto == InferenceLogits, bit for bit,
// across multi-slate and single-slate batches sharing one workspace
// (stale buffer contents from a bigger batch would show up).
TEST(ListwiseRerankerTest, ScoreSlateIntoMatchesInferenceLogitsBitwise) {
  const DatasetMeta meta = TestMeta();
  auto sessions = MakeSessions(/*seed=*/910);
  auto model = MakeModel(31);
  auto workspace = model->CreateInferenceWorkspace(
      static_cast<int64_t>(Flatten(sessions).size()));

  std::vector<std::vector<const Example*>> slices;
  slices.push_back(Flatten(sessions));          // All five slates fused.
  for (const auto& session : sessions) {        // Each slate alone.
    std::vector<const Example*> one;
    for (const Example& ex : session) one.push_back(&ex);
    slices.push_back(std::move(one));
  }
  slices.push_back(Flatten(sessions));          // Fused again, warm buffers.

  for (const auto& slice : slices) {
    Batch batch = CollateBatch(slice, meta, nullptr);
    Matrix want = model->InferenceLogits(batch);
    std::vector<float> got = ScoreSlates(model.get(), batch, workspace.get());
    for (int64_t i = 0; i < batch.size; ++i) {
      ASSERT_EQ(got[static_cast<size_t>(i)], want(i, 0))
          << "row " << i << " of batch size " << batch.size;
    }
  }
}

// A slate's scores must be a function of the slate alone: scoring a
// session by itself and fused behind four other sessions must agree
// bitwise. This is what lets the serving engine pack whole requests
// into one micro-batch freely.
TEST(ListwiseRerankerTest, SlateScoresIndependentOfBatchComposition) {
  const DatasetMeta meta = TestMeta();
  auto sessions = MakeSessions(/*seed=*/920);
  auto model = MakeModel(32);
  auto flat = Flatten(sessions);
  auto workspace =
      model->CreateInferenceWorkspace(static_cast<int64_t>(flat.size()));

  Batch fused = CollateBatch(flat, meta, nullptr);
  std::vector<float> fused_scores =
      ScoreSlates(model.get(), fused, workspace.get());

  size_t row = 0;
  for (const auto& session : sessions) {
    std::vector<const Example*> one;
    for (const Example& ex : session) one.push_back(&ex);
    Batch batch = CollateBatch(one, meta, nullptr);
    std::vector<float> alone =
        ScoreSlates(model.get(), batch, workspace.get());
    for (size_t i = 0; i < alone.size(); ++i, ++row) {
      ASSERT_EQ(alone[i], fused_scores[row]) << "slate row " << i;
    }
  }
}

TEST(ListwiseRerankerTest, RejectsSlateLongerThanMaxSlateLen) {
  auto session = MakeSession(/*seed=*/930, /*session_id=*/7,
                             /*items=*/TinyListwiseDims().max_slate_len + 1,
                             /*hist=*/2);
  std::vector<const Example*> items;
  for (const Example& ex : session) items.push_back(&ex);
  Batch batch = CollateBatch(items, TestMeta(), nullptr);
  auto model = MakeModel(33);
  EXPECT_DEATH((void)model->InferenceLogits(batch), "max_slate_len");
}

TEST(ListwiseRerankerTest, CloneProducesIdenticalScores) {
  const DatasetMeta meta = TestMeta();
  auto sessions = MakeSessions(/*seed=*/940);
  auto model = MakeModel(34);
  std::unique_ptr<Ranker> clone = model->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->SupportsSlateScoring());

  Batch batch = CollateBatch(Flatten(sessions), meta, nullptr);
  Matrix want = model->InferenceLogits(batch);
  Matrix got = clone->InferenceLogits(batch);
  for (int64_t i = 0; i < batch.size; ++i) {
    ASSERT_EQ(got(i, 0), want(i, 0)) << "row " << i;
  }
}

std::vector<Example> TrainingSplit(uint64_t seed, int64_t num_sessions) {
  std::vector<Example> train;
  for (int64_t s = 0; s < num_sessions; ++s) {
    auto session = MakeSession(seed + static_cast<uint64_t>(s) * 131,
                               1000 + s, /*items=*/4, /*hist=*/3);
    for (Example& ex : session) train.push_back(std::move(ex));
  }
  return train;
}

// Trainer end-to-end on the ListNet loss: SupportsSlateScoring switches
// BuildTrainingLoss to listwise softmax cross-entropy and the iterator
// to session-grouped batches; the loss must come down.
TEST(ListwiseRerankerTest, TrainerLowersListwiseLoss) {
  auto model = MakeModel(35);
  TrainerConfig config;
  config.batch_size = 12;  // Three 4-item slates per batch.
  config.epochs = 5;
  config.lr = 5e-3f;
  Trainer trainer(model.get(), config);
  std::vector<Example> train = TrainingSplit(/*seed=*/950, 24);
  auto history = trainer.Train(train, TestMeta(), nullptr);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_GT(history.front().mean_rank_loss, 0.0);
  EXPECT_LT(history.back().mean_rank_loss, history.front().mean_rank_loss);
}

// An oversized session (more rows than max_slate_len) must not abort
// training: the grouping iterator splits it into sub-slates of at most
// the cap (carried as Batch::slate_starts) and the ListNet loss ranks
// each sub-slate against itself.
TEST(ListwiseRerankerTest, TrainerSplitsOversizedSessionsInsteadOfAborting) {
  auto model = MakeModel(37);
  std::vector<Example> train = TrainingSplit(/*seed=*/970, 4);
  auto big = MakeSession(/*seed=*/971, /*session_id=*/2000,
                         /*items=*/3 * TinyListwiseDims().max_slate_len + 5,
                         /*hist=*/3);
  for (Example& ex : big) train.push_back(std::move(ex));
  TrainerConfig config;
  config.batch_size = 12;
  config.epochs = 2;
  config.lr = 5e-3f;
  Trainer trainer(model.get(), config);
  auto history = trainer.Train(train, TestMeta(), nullptr);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_TRUE(std::isfinite(history.back().mean_rank_loss));
  EXPECT_GT(history.back().mean_rank_loss, 0.0);
}

// Two distinct slates that happen to share a session id (a split
// oversized session, or non-contiguous duplicate ids a shuffle made
// adjacent) must NOT merge: explicit Batch::slate_starts are
// authoritative over session-id run derivation in both forward paths.
TEST(ListwiseRerankerTest, ExplicitSlateStartsKeepSameIdSlatesDistinct) {
  const DatasetMeta meta = TestMeta();
  auto model = MakeModel(38);
  auto a = MakeSession(/*seed=*/980, /*session_id=*/500, /*items=*/4,
                       /*hist=*/2);
  auto b = MakeSession(/*seed=*/981, /*session_id=*/500, /*items=*/3,
                       /*hist=*/5);  // Same id, different slate.
  std::vector<const Example*> joint;
  for (const Example& ex : a) joint.push_back(&ex);
  for (const Example& ex : b) joint.push_back(&ex);

  Batch batch = CollateBatch(joint, meta, nullptr);
  batch.slate_starts = {0, 4};
  Matrix got = model->InferenceLogits(batch);

  // Reference: each slate scored alone.
  std::vector<const Example*> only_a(joint.begin(), joint.begin() + 4);
  std::vector<const Example*> only_b(joint.begin() + 4, joint.end());
  Matrix want_a = model->InferenceLogits(CollateBatch(only_a, meta, nullptr));
  Matrix want_b = model->InferenceLogits(CollateBatch(only_b, meta, nullptr));
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got(i, 0), want_a(i, 0)) << "slate a row " << i;
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got(4 + i, 0), want_b(i, 0)) << "slate b row " << i;
  }

  // The workspace path honours the explicit starts identically.
  auto workspace = model->CreateInferenceWorkspace(batch.size);
  std::vector<float> inferred(static_cast<size_t>(batch.size));
  model->ScoreInto(batch, /*gate=*/nullptr, workspace.get(),
                   std::span<float>(inferred));
  for (int64_t i = 0; i < batch.size; ++i) {
    EXPECT_EQ(inferred[static_cast<size_t>(i)], got(i, 0)) << "row " << i;
  }

  // Without the explicit starts the runs merge into one 7-row slate —
  // a different attention context, hence different scores.
  Batch merged = CollateBatch(joint, meta, nullptr);
  Matrix fallback = model->InferenceLogits(merged);
  bool differs = false;
  for (int64_t i = 0; i < batch.size && !differs; ++i) {
    differs = fallback(i, 0) != got(i, 0);
  }
  EXPECT_TRUE(differs);
}

// ParallelTrainer's determinism contract extends to listwise models:
// with identical configs, 1-worker and 3-worker runs must end at
// BITWISE the same parameters.
TEST(ListwiseRerankerTest, ParallelTrainerWorkerCountInvariant) {
  std::vector<Example> train = TrainingSplit(/*seed=*/960, 18);
  ParallelTrainerConfig config;
  config.base.batch_size = 8;  // Two 4-item slates per shard.
  config.base.epochs = 2;
  config.base.lr = 5e-3f;
  config.grad_accumulation = 2;

  auto reference = MakeModel(36);
  config.num_workers = 1;
  {
    ParallelTrainer trainer(reference.get(), config);
    trainer.Train(train, TestMeta(), nullptr);
  }
  auto parallel = MakeModel(36);
  config.num_workers = 3;
  {
    ParallelTrainer trainer(parallel.get(), config);
    trainer.Train(train, TestMeta(), nullptr);
  }

  std::vector<Var> want = reference->Parameters();
  std::vector<Var> got = parallel->Parameters();
  ASSERT_EQ(want.size(), got.size());
  for (size_t p = 0; p < want.size(); ++p) {
    const Matrix& a = want[p].value();
    const Matrix& b = got[p].value();
    ASSERT_TRUE(a.SameShape(b));
    for (int64_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i]) << "parameter " << p;
    }
  }
}

}  // namespace
}  // namespace awmoe
