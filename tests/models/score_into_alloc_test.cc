// Allocation-freeness of the ScoreInto hot path: a global operator-new
// interposer counts heap allocations, and steady-state ScoreInto /
// GateInto calls (after one warm-up pass grows the workspace) must
// perform exactly zero — per ranker, with and without a supplied
// session gate. This is the property that makes the serving hot path
// safe from allocator contention and fragmentation under load.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "nn/inference.h"
#include "util/rng.h"

namespace {

// ---------------------------------------------------------------------
// Operator-new interposer. Counts every allocation made while a
// CountingScope is active (single-threaded test; the atomics are only
// there so the counting itself never introduces UB).
// ---------------------------------------------------------------------

std::atomic<bool> g_counting{false};
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace awmoe {
namespace {

class CountingScope {
 public:
  CountingScope() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountingScope() { g_counting.store(false, std::memory_order_relaxed); }
  int64_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

DatasetMeta TestMeta(bool recommendation) {
  DatasetMeta meta;
  meta.num_items = 60;
  meta.num_cats = 7;
  meta.num_brands = 21;
  meta.num_shops = 9;
  meta.num_queries = 14;
  meta.max_seq_len = 6;
  meta.recommendation_mode = recommendation;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

std::vector<Example> MakeExamples(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> examples;
  for (int64_t i = 0; i < count; ++i) {
    Example ex;
    const int64_t hist = i % 7;  // Include all-padding rows.
    for (int64_t j = 0; j < hist; ++j) {
      ex.behavior_items.push_back(rng.UniformInt(1, 59));
      ex.behavior_cats.push_back(rng.UniformInt(1, 6));
      ex.behavior_brands.push_back(rng.UniformInt(1, 20));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Normal()));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
    }
    ex.target_item = rng.UniformInt(1, 59);
    ex.target_cat = rng.UniformInt(1, 6);
    ex.target_brand = rng.UniformInt(1, 20);
    ex.target_shop = rng.UniformInt(1, 8);
    ex.query_id = rng.UniformInt(1, 13);
    ex.query_cat = ex.target_cat;
    ex.user_id = rng.UniformInt(1, 40);
    ex.age_segment = rng.UniformInt(0, 2);
    ex.session_id = 1 + i / 4;
    ex.numeric.resize(kNumNumericFeatures);
    for (float& v : ex.numeric) v = static_cast<float>(rng.Normal());
    examples.push_back(std::move(ex));
  }
  return examples;
}

struct NamedRanker {
  std::string label;
  std::unique_ptr<Ranker> model;
};

std::vector<NamedRanker> MakeRankers(const DatasetMeta& meta) {
  std::vector<NamedRanker> rankers;
  {
    Rng rng(11);
    rankers.push_back(
        {"DNN", std::make_unique<DnnRanker>(meta, TinyDims(), &rng)});
  }
  {
    Rng rng(12);
    rankers.push_back(
        {"DIN", std::make_unique<DinRanker>(meta, TinyDims(), &rng)});
  }
  {
    Rng rng(13);
    rankers.push_back({"Category-MoE", std::make_unique<CategoryMoeRanker>(
                                           meta, TinyDims(), &rng)});
  }
  {
    Rng rng(14);
    AwMoeConfig config;
    config.dims = TinyDims();
    rankers.push_back(
        {"AW-MoE", std::make_unique<AwMoeRanker>(meta, config, &rng)});
  }
  return rankers;
}

class ScoreIntoAllocTest : public ::testing::TestWithParam<bool> {};

TEST_P(ScoreIntoAllocTest, SteadyStateScoreIntoAllocatesNothing) {
  const DatasetMeta meta = TestMeta(GetParam());
  std::vector<Example> examples = MakeExamples(24, /*seed=*/404);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch batch = CollateBatch(items, meta, nullptr);

  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(32);
    std::vector<float> out(static_cast<size_t>(batch.size));
    // Warm-up: the first pass materialises arena slabs, the second
    // proves they settled.
    ranker.model->ScoreInto(batch, nullptr, workspace.get(), out);
    ranker.model->ScoreInto(batch, nullptr, workspace.get(), out);
    {
      CountingScope scope;
      for (int pass = 0; pass < 5; ++pass) {
        ranker.model->ScoreInto(batch, nullptr, workspace.get(), out);
      }
      EXPECT_EQ(scope.count(), 0)
          << ranker.label << ": steady-state ScoreInto hit the heap";
    }
  }
}

TEST_P(ScoreIntoAllocTest, SteadyStateGatePathAllocatesNothing) {
  const DatasetMeta meta = TestMeta(GetParam());
  std::vector<Example> examples = MakeExamples(24, /*seed=*/505);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch batch = CollateBatch(items, meta, nullptr);

  for (NamedRanker& ranker : MakeRankers(meta)) {
    const int64_t width = ranker.model->SessionGateWidth();
    if (width == 0) continue;  // DNN / DIN have no gate.
    auto workspace = ranker.model->CreateInferenceWorkspace(32);
    std::vector<float> gate_rows(static_cast<size_t>(batch.size * width));
    std::vector<float> out(static_cast<size_t>(batch.size));
    ranker.model->GateInto(batch, workspace.get(), gate_rows);
    SessionGate gate{gate_rows.data(), batch.size, width};
    ranker.model->ScoreInto(batch, &gate, workspace.get(), out);
    {
      CountingScope scope;
      for (int pass = 0; pass < 5; ++pass) {
        ranker.model->GateInto(batch, workspace.get(), gate_rows);
        ranker.model->ScoreInto(batch, &gate, workspace.get(), out);
      }
      EXPECT_EQ(scope.count(), 0)
          << ranker.label << ": steady-state gate path hit the heap";
    }
  }
}

// The split encode/score path (level-2 session feature store) must be
// just as allocation-free as the fused one: a cache hit that replays a
// stored encoding may not pay the allocator on the tail pass, and a
// miss that materialises the encoding may not pay it either.
TEST_P(ScoreIntoAllocTest, SteadyStateSplitEncodeScoreAllocatesNothing) {
  const DatasetMeta meta = TestMeta(GetParam());
  std::vector<Example> examples = MakeExamples(24, /*seed=*/707);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch batch = CollateBatch(items, meta, nullptr);

  for (NamedRanker& ranker : MakeRankers(meta)) {
    const int64_t width = ranker.model->SessionEncodingWidth();
    if (width == 0) continue;
    auto workspace = ranker.model->CreateInferenceWorkspace(32);
    std::vector<float> rows(static_cast<size_t>(batch.size * width));
    std::vector<float> out(static_cast<size_t>(batch.size));
    ranker.model->EncodeSessionInto(batch, workspace.get(), rows);
    SessionEncoding enc{rows.data(), batch.size, width};
    ranker.model->ScoreWithSessionInto(batch, nullptr, &enc,
                                       workspace.get(), out);
    {
      CountingScope scope;
      for (int pass = 0; pass < 5; ++pass) {
        ranker.model->EncodeSessionInto(batch, workspace.get(), rows);
        ranker.model->ScoreWithSessionInto(batch, nullptr, &enc,
                                           workspace.get(), out);
      }
      EXPECT_EQ(scope.count(), 0)
          << ranker.label << ": steady-state split path hit the heap";
    }
  }
}

// The engine's full cache-miss shape: gate probe + encoding probe
// replayed together through ScoreWithSessionInto.
TEST_P(ScoreIntoAllocTest, SteadyStateGatePlusEncodingAllocatesNothing) {
  const DatasetMeta meta = TestMeta(GetParam());
  std::vector<Example> examples = MakeExamples(24, /*seed=*/808);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch batch = CollateBatch(items, meta, nullptr);

  for (NamedRanker& ranker : MakeRankers(meta)) {
    const int64_t gate_width = ranker.model->SessionGateWidth();
    const int64_t enc_width = ranker.model->SessionEncodingWidth();
    if (gate_width == 0 || enc_width == 0) continue;
    auto workspace = ranker.model->CreateInferenceWorkspace(32);
    std::vector<float> gate_rows(
        static_cast<size_t>(batch.size * gate_width));
    std::vector<float> enc_rows(
        static_cast<size_t>(batch.size * enc_width));
    std::vector<float> out(static_cast<size_t>(batch.size));
    ranker.model->GateInto(batch, workspace.get(), gate_rows);
    ranker.model->EncodeSessionInto(batch, workspace.get(), enc_rows);
    SessionGate gate{gate_rows.data(), batch.size, gate_width};
    SessionEncoding enc{enc_rows.data(), batch.size, enc_width};
    ranker.model->ScoreWithSessionInto(batch, &gate, &enc,
                                       workspace.get(), out);
    {
      CountingScope scope;
      for (int pass = 0; pass < 5; ++pass) {
        ranker.model->GateInto(batch, workspace.get(), gate_rows);
        ranker.model->EncodeSessionInto(batch, workspace.get(), enc_rows);
        ranker.model->ScoreWithSessionInto(batch, &gate, &enc,
                                           workspace.get(), out);
      }
      EXPECT_EQ(scope.count(), 0)
          << ranker.label << ": steady-state gate+encoding path hit the heap";
    }
  }
}

// Smaller batches after a big one must also run allocation-free (slabs
// only ever grow; the engine sizes workspaces to its batching cap).
TEST_P(ScoreIntoAllocTest, SmallerBatchAfterWarmupAllocatesNothing) {
  const DatasetMeta meta = TestMeta(GetParam());
  std::vector<Example> examples = MakeExamples(24, /*seed=*/606);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch big = CollateBatch(items, meta, nullptr);
  const Batch small = CollateBatch(
      {items.begin(), items.begin() + 3}, meta, nullptr);

  for (NamedRanker& ranker : MakeRankers(meta)) {
    auto workspace = ranker.model->CreateInferenceWorkspace(32);
    std::vector<float> out(static_cast<size_t>(big.size));
    ranker.model->ScoreInto(big, nullptr, workspace.get(), out);
    {
      CountingScope scope;
      ranker.model->ScoreInto(small, nullptr, workspace.get(), out);
      ranker.model->ScoreInto(big, nullptr, workspace.get(), out);
      EXPECT_EQ(scope.count(), 0) << ranker.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ScoreIntoAllocTest, ::testing::Bool());

}  // namespace
}  // namespace awmoe
