#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "core/aw_moe.h"
#include "data/batcher.h"
#include "mat/kernels.h"
#include "models/attention_unit.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "models/embedding_set.h"
#include "models/expert.h"
#include "models/input_network.h"
#include "util/rng.h"

namespace awmoe {
namespace {

DatasetMeta TestMeta(bool recommendation = false) {
  DatasetMeta meta;
  meta.num_items = 50;
  meta.num_cats = 6;
  meta.num_brands = 20;
  meta.num_shops = 10;
  meta.num_queries = 12;
  meta.max_seq_len = 4;
  meta.recommendation_mode = recommendation;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 3;
  return dims;
}

Example MakeExample(int64_t seed_id, int64_t history_len) {
  Example ex;
  Rng rng(static_cast<uint64_t>(seed_id) + 1000);
  for (int64_t j = 0; j < history_len; ++j) {
    ex.behavior_items.push_back(rng.UniformInt(1, 50));
    ex.behavior_cats.push_back(rng.UniformInt(1, 6));
    ex.behavior_brands.push_back(rng.UniformInt(1, 20));
  }
  ex.target_item = rng.UniformInt(1, 50);
  ex.target_cat = rng.UniformInt(1, 6);
  ex.target_brand = rng.UniformInt(1, 20);
  ex.target_shop = rng.UniformInt(1, 10);
  ex.query_id = rng.UniformInt(1, 12);
  ex.query_cat = ex.target_cat;
  ex.user_id = seed_id;
  ex.session_id = seed_id;
  ex.age_segment = rng.UniformInt(0, 3);
  ex.label = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  ex.numeric.assign(kNumNumericFeatures, 0.1f);
  return ex;
}

Batch MakeBatch(const DatasetMeta& meta, int64_t size,
                int64_t min_history = 0) {
  static std::vector<Example> storage;
  storage.clear();
  for (int64_t i = 0; i < size; ++i) {
    storage.push_back(MakeExample(i, min_history + (i % 3)));
  }
  std::vector<const Example*> ptrs;
  for (const Example& ex : storage) ptrs.push_back(&ex);
  return CollateBatch(ptrs, meta, nullptr);
}

TEST(EmbeddingSetTest, ItemTripleShape) {
  Rng rng(1);
  EmbeddingSet set(TestMeta(), 4, &rng);
  Var triple = set.ItemTriple({1, 2}, {3, 4}, {5, 6});
  EXPECT_EQ(triple.rows(), 2);
  EXPECT_EQ(triple.cols(), 12);
  EXPECT_EQ(set.item_dim(), 12);
}

TEST(EmbeddingSetTest, SharedAcrossCalls) {
  Rng rng(2);
  EmbeddingSet set(TestMeta(), 4, &rng);
  Matrix a = set.Query({3}).value();
  Matrix b = set.Query({3}).value();
  EXPECT_TRUE(AllClose(a, b, 0.0f));
}

TEST(AttentionUnitTest, ScalarScorePerRow) {
  Rng rng(3);
  AttentionUnit unit(6, {4, 3}, &rng);
  Var h_user(Matrix::Full(5, 6, 0.2f));
  Var h_ref(Matrix::Full(5, 6, -0.1f));
  Var score = unit.Forward(h_user, h_ref);
  EXPECT_EQ(score.rows(), 5);
  EXPECT_EQ(score.cols(), 1);
}

TEST(AttentionUnitTest, DependsOnBothInputs) {
  Rng rng(4);
  AttentionUnit unit(4, {4}, &rng);
  Rng data(5);
  Matrix u(1, 4), r1(1, 4), r2(1, 4);
  for (int64_t i = 0; i < 4; ++i) {
    u.data()[i] = static_cast<float>(data.Normal());
    r1.data()[i] = static_cast<float>(data.Normal());
    r2.data()[i] = static_cast<float>(data.Normal());
  }
  float s1 = unit.Forward(Var(u), Var(r1)).value()(0, 0);
  float s2 = unit.Forward(Var(u), Var(r2)).value()(0, 0);
  EXPECT_NE(s1, s2);
}

TEST(InputNetworkTest, OutputDimSearchMode) {
  Rng rng(6);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  InputNetwork net(meta, TinyDims(), &set, UserPooling::kAttention, &rng);
  EXPECT_EQ(net.output_dim(), 4 * 6);  // 4 parts x hidden 6.
  Batch batch = MakeBatch(meta, 3);
  Var v_imp = net.Forward(batch);
  EXPECT_EQ(v_imp.rows(), 3);
  EXPECT_EQ(v_imp.cols(), net.output_dim());
}

TEST(InputNetworkTest, OutputDimRecommendationMode) {
  Rng rng(7);
  DatasetMeta meta = TestMeta(/*recommendation=*/true);
  EmbeddingSet set(meta, 4, &rng);
  InputNetwork net(meta, TinyDims(), &set, UserPooling::kAttention, &rng);
  EXPECT_EQ(net.output_dim(), 3 * 6);  // Query tower dropped.
  Batch batch = MakeBatch(meta, 2);
  EXPECT_EQ(net.Forward(batch).cols(), 3 * 6);
}

TEST(InputNetworkTest, EmptyHistoryGivesZeroUserVector) {
  Rng rng(8);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  InputNetwork net(meta, TinyDims(), &set, UserPooling::kAttention, &rng);
  Batch batch = MakeBatch(meta, 1, /*min_history=*/0);  // history 0.
  Var v_imp = net.Forward(batch);
  // First hidden_dim cols are the user vector: all zero for empty history.
  Matrix user_part = SliceCols(v_imp.value(), 0, 6);
  EXPECT_TRUE(AllClose(user_part, Matrix(1, 6), 0.0f));
}

TEST(InputNetworkTest, PaddingMaskingInvariance) {
  // Changing ids at masked (padded) positions must not change the output.
  Rng rng(9);
  DatasetMeta meta = TestMeta();
  EmbeddingSet set(meta, 4, &rng);
  InputNetwork net(meta, TinyDims(), &set, UserPooling::kAttention, &rng);
  Batch batch = MakeBatch(meta, 2, /*min_history=*/1);
  Matrix before = net.Forward(batch).value();
  // Poison padded slots.
  for (int64_t i = 0; i < batch.size; ++i) {
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      if (batch.behavior_mask(i, j) == 0.0f) {
        batch.behavior_items[static_cast<size_t>(i * batch.seq_len + j)] = 7;
        batch.behavior_cats[static_cast<size_t>(i * batch.seq_len + j)] = 3;
        batch.behavior_brands[static_cast<size_t>(i * batch.seq_len + j)] = 9;
      }
    }
  }
  Matrix after = net.Forward(batch).value();
  EXPECT_TRUE(AllClose(before, after, 1e-6f));
}

TEST(ExpertBankTest, ScoresShape) {
  Rng rng(10);
  ExpertBank bank(24, TinyDims(), &rng);
  EXPECT_EQ(bank.num_experts(), 3);
  Var scores = bank.ForwardAll(Var(Matrix::Full(5, 24, 0.1f)));
  EXPECT_EQ(scores.rows(), 5);
  EXPECT_EQ(scores.cols(), 3);
}

TEST(ExpertBankTest, ExpertsDifferByInitialisation) {
  Rng rng(11);
  ExpertBank bank(8, TinyDims(), &rng);
  Matrix scores = bank.ForwardAll(Var(Matrix::Full(1, 8, 0.5f))).value();
  EXPECT_NE(scores(0, 0), scores(0, 1));
  EXPECT_NE(scores(0, 1), scores(0, 2));
}

TEST(DnnRankerTest, LogitsShapeAndGradFlow) {
  Rng rng(12);
  DatasetMeta meta = TestMeta();
  DnnRanker model(meta, TinyDims(), &rng);
  Batch batch = MakeBatch(meta, 4);
  Var logits = model.ForwardLogits(batch);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 1);
  ag::BceWithLogitsLoss(logits, batch.labels).Backward();
  int64_t with_grad = 0;
  for (const Var& p : model.Parameters()) {
    if (p.has_grad()) ++with_grad;
  }
  EXPECT_GT(with_grad, 0);
}

TEST(DinRankerTest, DiffersFromDnnOutput) {
  Rng rng(13);
  DatasetMeta meta = TestMeta();
  DnnRanker dnn(meta, TinyDims(), &rng);
  Rng rng2(13);
  DinRanker din(meta, TinyDims(), &rng2);
  Batch batch = MakeBatch(meta, 3, /*min_history=*/2);
  Matrix a = dnn.ForwardLogits(batch).value();
  Matrix b = din.ForwardLogits(batch).value();
  EXPECT_FALSE(AllClose(a, b, 1e-6f));
}

TEST(CategoryMoeTest, GateIsDistributionOverExperts) {
  Rng rng(14);
  DatasetMeta meta = TestMeta();
  CategoryMoeRanker model(meta, TinyDims(), &rng);
  Batch batch = MakeBatch(meta, 4);
  Matrix gate = model.GateRepresentation(batch).value();
  EXPECT_EQ(gate.cols(), 3);
  for (int64_t i = 0; i < gate.rows(); ++i) {
    float total = 0.0f;
    for (int64_t k = 0; k < gate.cols(); ++k) {
      EXPECT_GT(gate(i, k), 0.0f);
      total += gate(i, k);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(CategoryMoeTest, GateDependsOnlyOnQueryCategory) {
  Rng rng(15);
  DatasetMeta meta = TestMeta();
  CategoryMoeRanker model(meta, TinyDims(), &rng);
  Batch batch = MakeBatch(meta, 2);
  batch.query_cats = {3, 3};
  Matrix gate = model.GateRepresentation(batch).value();
  // Same category -> identical gate rows regardless of other features.
  for (int64_t k = 0; k < gate.cols(); ++k) {
    EXPECT_FLOAT_EQ(gate(0, k), gate(1, k));
  }
}

TEST(RankerInterfaceTest, ParameterCountsPositiveAndDistinct) {
  Rng rng(16);
  DatasetMeta meta = TestMeta();
  DnnRanker dnn(meta, TinyDims(), &rng);
  Rng rng2(17);
  CategoryMoeRanker moe(meta, TinyDims(), &rng2);
  EXPECT_GT(dnn.NumParameters(), 0);
  // MoE has K experts + gate on top of shared structure.
  EXPECT_GT(moe.NumParameters(), dnn.NumParameters());
}

// ---------------------------------------------------------------------
// Ranker::Clone: the serving ModelPool materialises replica lanes from
// one loaded model, so clones must be bitwise-equal in output and fully
// disjoint in storage.
// ---------------------------------------------------------------------

/// Clones `original`, then asserts (a) bitwise-identical inference
/// logits, (b) equal parameter values in (c) disjoint storage, by
/// perturbing the original's first parameter and checking the clone
/// neither sees the change nor shifts its logits.
void CheckCloneIndependence(Ranker* original, const DatasetMeta& meta) {
  std::unique_ptr<Ranker> clone = original->Clone();
  ASSERT_NE(clone, nullptr) << original->name() << " must be cloneable";
  EXPECT_EQ(clone->name(), original->name());
  EXPECT_EQ(clone->NumParameters(), original->NumParameters());

  Batch batch = MakeBatch(meta, 4, /*min_history=*/1);
  Matrix want = original->InferenceLogits(batch);
  Matrix got = clone->InferenceLogits(batch);
  ASSERT_EQ(got.rows(), want.rows());
  for (int64_t r = 0; r < want.rows(); ++r) {
    EXPECT_EQ(got(r, 0), want(r, 0)) << "row " << r;
  }

  std::vector<Var> orig_params = original->Parameters();
  std::vector<Var> clone_params = clone->Parameters();
  ASSERT_EQ(orig_params.size(), clone_params.size());
  for (size_t i = 0; i < orig_params.size(); ++i) {
    // Equal values, distinct buffers.
    EXPECT_NE(orig_params[i].value().data(), clone_params[i].value().data())
        << "parameter " << i << " shares storage";
    ASSERT_EQ(orig_params[i].value().size(), clone_params[i].value().size());
    for (int64_t k = 0; k < orig_params[i].value().size(); ++k) {
      ASSERT_EQ(orig_params[i].value().data()[k],
                clone_params[i].value().data()[k])
          << "parameter " << i << " element " << k;
    }
  }

  // Perturb the original: the clone's weights and logits must not move.
  const float before = clone_params[0].value().data()[0];
  orig_params[0].mutable_value().data()[0] += 1.0f;
  EXPECT_EQ(clone_params[0].value().data()[0], before);
  Matrix after = clone->InferenceLogits(batch);
  for (int64_t r = 0; r < want.rows(); ++r) {
    EXPECT_EQ(after(r, 0), want(r, 0)) << "clone drifted at row " << r;
  }
  // Undo so shared fixtures are unaffected.
  orig_params[0].mutable_value().data()[0] -= 1.0f;
}

TEST(RankerCloneTest, DnnCloneIsBitwiseEqualAndDisjoint) {
  Rng rng(21);
  DatasetMeta meta = TestMeta();
  DnnRanker model(meta, TinyDims(), &rng);
  CheckCloneIndependence(&model, meta);
}

TEST(RankerCloneTest, DinCloneIsBitwiseEqualAndDisjoint) {
  Rng rng(22);
  DatasetMeta meta = TestMeta();
  DinRanker model(meta, TinyDims(), &rng);
  CheckCloneIndependence(&model, meta);
}

TEST(RankerCloneTest, CategoryMoeCloneIsBitwiseEqualAndDisjoint) {
  Rng rng(23);
  DatasetMeta meta = TestMeta();
  CategoryMoeRanker model(meta, TinyDims(), &rng);
  CheckCloneIndependence(&model, meta);
}

TEST(RankerCloneTest, AwMoeCloneIsBitwiseEqualAndDisjoint) {
  Rng rng(24);
  DatasetMeta meta = TestMeta();
  AwMoeConfig config;
  config.dims = TinyDims();
  AwMoeRanker model(meta, config, &rng);
  CheckCloneIndependence(&model, meta);
}

TEST(RankerCloneTest, AwMoeCloneSharesGateEligibilityAndConfig) {
  Rng rng(25);
  DatasetMeta meta = TestMeta();
  AwMoeConfig config;
  config.dims = TinyDims();
  config.name = "AW-MoE & CL";
  AwMoeRanker model(meta, config, &rng);
  std::unique_ptr<Ranker> clone = model.Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->name(), "AW-MoE & CL");
  EXPECT_TRUE(clone->SupportsSessionGateReuse(meta));
  auto* aw_clone = dynamic_cast<AwMoeRanker*>(clone.get());
  ASSERT_NE(aw_clone, nullptr);
  // The §III-F serving path must agree bitwise across replicas too.
  Batch batch = MakeBatch(meta, 3, /*min_history=*/1);
  Matrix gate_a = model.InferenceGate(batch);
  Matrix gate_b = aw_clone->InferenceGate(batch);
  for (int64_t r = 0; r < gate_a.rows(); ++r) {
    for (int64_t c = 0; c < gate_a.cols(); ++c) {
      EXPECT_EQ(gate_a(r, c), gate_b(r, c));
    }
  }
}

}  // namespace
}  // namespace awmoe
