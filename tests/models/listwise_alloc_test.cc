// Allocation-freeness of the slate-scoring hot path: a global
// operator-new interposer (own binary — the interposer is process-wide)
// counts heap allocations, and steady-state ScoreSlateInto calls, after
// one warm-up pass grows the workspace arena, must perform exactly
// zero. Same contract as the pointwise ScoreInto suite
// (score_into_alloc_test.cc): the serving lane's slate branch never
// pays the allocator under load.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "models/listwise/listwise_reranker.h"
#include "nn/inference.h"
#include "util/rng.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace awmoe {
namespace {

class CountingScope {
 public:
  CountingScope() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountingScope() { g_counting.store(false, std::memory_order_relaxed); }
  int64_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

DatasetMeta TestMeta() {
  DatasetMeta meta;
  meta.num_items = 60;
  meta.num_cats = 7;
  meta.num_brands = 21;
  meta.num_shops = 9;
  meta.num_queries = 14;
  meta.max_seq_len = 6;
  return meta;
}

ModelDims TinyDims() {
  ModelDims dims;
  dims.emb_dim = 4;
  dims.tower_mlp = {8, 6};
  dims.activation_unit = {6, 4};
  dims.gate_unit = {6, 4};
  dims.expert = {12, 8};
  dims.num_experts = 4;
  return dims;
}

ListwiseDims TinyListwiseDims() {
  ListwiseDims ldims;
  ldims.d_model = 8;
  ldims.num_heads = 2;
  ldims.num_layers = 2;
  ldims.ffn_hidden = {12};
  ldims.head_hidden = {6};
  ldims.max_slate_len = 16;
  return ldims;
}

/// Three slates of 7 / 4 / 13 rows (session ids in batch order, so
/// SlateStartsFromBatch recovers them too).
std::vector<Example> MakeExamples(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> examples;
  for (int64_t i = 0; i < count; ++i) {
    Example ex;
    const int64_t hist = i % 7;  // Include all-padding rows.
    for (int64_t j = 0; j < hist; ++j) {
      ex.behavior_items.push_back(rng.UniformInt(1, 59));
      ex.behavior_cats.push_back(rng.UniformInt(1, 6));
      ex.behavior_brands.push_back(rng.UniformInt(1, 20));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Normal()));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
      ex.behavior_attrs.push_back(static_cast<float>(rng.Uniform()));
    }
    ex.target_item = rng.UniformInt(1, 59);
    ex.target_cat = rng.UniformInt(1, 6);
    ex.target_brand = rng.UniformInt(1, 20);
    ex.target_shop = rng.UniformInt(1, 8);
    ex.query_id = rng.UniformInt(1, 13);
    ex.query_cat = ex.target_cat;
    ex.user_id = rng.UniformInt(1, 40);
    ex.age_segment = rng.UniformInt(0, 2);
    ex.session_id = i < 7 ? 1 : (i < 11 ? 2 : 3);
    ex.numeric.resize(kNumNumericFeatures);
    for (float& v : ex.numeric) v = static_cast<float>(rng.Normal());
    examples.push_back(std::move(ex));
  }
  return examples;
}

TEST(ListwiseAllocTest, SteadyStateScoreSlateIntoAllocatesNothing) {
  const DatasetMeta meta = TestMeta();
  std::vector<Example> examples = MakeExamples(24, /*seed=*/909);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch batch = CollateBatch(items, meta, nullptr);
  const std::vector<int64_t> starts = {0, 7, 11};

  Rng rng(15);
  ListwiseReranker model(meta, TinyDims(), TinyListwiseDims(), &rng);
  auto workspace = model.CreateInferenceWorkspace(32);
  std::vector<float> out(static_cast<size_t>(batch.size));
  // Warm-up: the first pass materialises arena slabs, the second proves
  // they settled.
  model.ScoreSlateInto(batch, starts, workspace.get(), out);
  model.ScoreSlateInto(batch, starts, workspace.get(), out);
  {
    CountingScope scope;
    for (int pass = 0; pass < 5; ++pass) {
      model.ScoreSlateInto(batch, starts, workspace.get(), out);
    }
    EXPECT_EQ(scope.count(), 0)
        << "steady-state ScoreSlateInto hit the heap";
  }
}

// The pointwise-API shim (ScoreInto derives slate starts from session-
// id runs into a thread-local scratch vector) must also settle to zero
// once that vector's capacity is warm.
TEST(ListwiseAllocTest, SteadyStateScoreIntoShimAllocatesNothing) {
  const DatasetMeta meta = TestMeta();
  std::vector<Example> examples = MakeExamples(24, /*seed=*/1010);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch batch = CollateBatch(items, meta, nullptr);

  Rng rng(16);
  ListwiseReranker model(meta, TinyDims(), TinyListwiseDims(), &rng);
  auto workspace = model.CreateInferenceWorkspace(32);
  std::vector<float> out(static_cast<size_t>(batch.size));
  model.ScoreInto(batch, nullptr, workspace.get(), out);
  model.ScoreInto(batch, nullptr, workspace.get(), out);
  {
    CountingScope scope;
    for (int pass = 0; pass < 5; ++pass) {
      model.ScoreInto(batch, nullptr, workspace.get(), out);
    }
    EXPECT_EQ(scope.count(), 0) << "steady-state ScoreInto shim hit the heap";
  }
}

// Smaller slates after a big batch must also run allocation-free (arena
// slabs only ever grow; the engine sizes workspaces to its batch cap).
TEST(ListwiseAllocTest, SmallerSlatesAfterWarmupAllocateNothing) {
  const DatasetMeta meta = TestMeta();
  std::vector<Example> examples = MakeExamples(24, /*seed=*/1111);
  std::vector<const Example*> items;
  for (const Example& ex : examples) items.push_back(&ex);
  const Batch big = CollateBatch(items, meta, nullptr);
  const Batch small =
      CollateBatch({items.begin(), items.begin() + 4}, meta, nullptr);
  const std::vector<int64_t> big_starts = {0, 7, 11};
  const std::vector<int64_t> small_starts = {0};

  Rng rng(18);
  ListwiseReranker model(meta, TinyDims(), TinyListwiseDims(), &rng);
  auto workspace = model.CreateInferenceWorkspace(32);
  std::vector<float> out(static_cast<size_t>(big.size));
  model.ScoreSlateInto(big, big_starts, workspace.get(), out);
  {
    CountingScope scope;
    model.ScoreSlateInto(small, small_starts, workspace.get(),
                         {out.data(), static_cast<size_t>(small.size)});
    model.ScoreSlateInto(big, big_starts, workspace.get(), out);
    EXPECT_EQ(scope.count(), 0);
  }
}

}  // namespace
}  // namespace awmoe
