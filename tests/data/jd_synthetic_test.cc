#include "data/jd_synthetic.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace awmoe {
namespace {

JdConfig SmallConfig() {
  JdConfig config;
  config.num_users = 400;
  config.num_items = 300;
  config.num_categories = 10;
  config.brands_per_category = 5;
  config.num_shops = 20;
  config.train_sessions = 200;
  config.test_sessions = 50;
  config.longtail1_sessions = 20;
  config.longtail2_sessions = 20;
  config.seed = 99;
  return config;
}

class JdSyntheticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    JdSyntheticGenerator generator(SmallConfig());
    data_ = generator.Generate();
  }
  JdDataset data_;
};

TEST_F(JdSyntheticTest, SplitsNonEmpty) {
  EXPECT_FALSE(data_.train.empty());
  EXPECT_FALSE(data_.full_test.empty());
  EXPECT_FALSE(data_.longtail1_test.empty());
  EXPECT_FALSE(data_.longtail2_test.empty());
}

TEST_F(JdSyntheticTest, MetaMatchesConfig) {
  JdConfig config = SmallConfig();
  EXPECT_EQ(data_.meta.num_items, config.num_items + 1);
  EXPECT_EQ(data_.meta.num_cats, config.num_categories + 1);
  EXPECT_EQ(data_.meta.max_seq_len, config.max_history);
  EXPECT_FALSE(data_.meta.recommendation_mode);
}

TEST_F(JdSyntheticTest, TrainIsBalanced) {
  int64_t pos = 0, neg = 0;
  for (const Example& ex : data_.train) {
    (ex.label > 0.5f ? pos : neg) += 1;
  }
  EXPECT_EQ(pos, neg) << "paper uses a 1:1 train ratio";
}

TEST_F(JdSyntheticTest, TestHasMoreNegativesThanPositives) {
  int64_t pos = 0, neg = 0;
  for (const Example& ex : data_.full_test) {
    (ex.label > 0.5f ? pos : neg) += 1;
  }
  EXPECT_GT(pos, 0);
  // All impressions kept: ~12 items per session with 1-2 purchases.
  EXPECT_GT(neg, 4 * pos);
}

TEST_F(JdSyntheticTest, IdsWithinVocabularies) {
  auto check = [&](const std::vector<Example>& split) {
    for (const Example& ex : split) {
      EXPECT_GT(ex.target_item, 0);
      EXPECT_LT(ex.target_item, data_.meta.num_items);
      EXPECT_GT(ex.target_cat, 0);
      EXPECT_LT(ex.target_cat, data_.meta.num_cats);
      EXPECT_GT(ex.target_brand, 0);
      EXPECT_LT(ex.target_brand, data_.meta.num_brands);
      EXPECT_GT(ex.query_id, 0);
      EXPECT_LT(ex.query_id, data_.meta.num_queries);
      for (int64_t b : ex.behavior_items) {
        EXPECT_GT(b, 0);
        EXPECT_LT(b, data_.meta.num_items);
      }
      EXPECT_EQ(ex.behavior_items.size(), ex.behavior_cats.size());
      EXPECT_EQ(ex.behavior_items.size(), ex.behavior_brands.size());
      EXPECT_EQ(static_cast<int64_t>(ex.numeric.size()),
                static_cast<int64_t>(kNumNumericFeatures));
    }
  };
  check(data_.train);
  check(data_.full_test);
}

TEST_F(JdSyntheticTest, SessionsContainOnePositiveInTest) {
  std::set<int64_t> sessions_with_pos;
  std::set<int64_t> all_sessions;
  for (const Example& ex : data_.full_test) {
    all_sessions.insert(ex.session_id);
    if (ex.label > 0.5f) sessions_with_pos.insert(ex.session_id);
  }
  EXPECT_EQ(sessions_with_pos.size(), all_sessions.size())
      << "every kept test session has at least one purchase";
}

TEST_F(JdSyntheticTest, LongtailSet1HasShortHistories) {
  for (const Example& ex : data_.longtail1_test) {
    EXPECT_LE(ex.history_len, 3);
  }
}

TEST_F(JdSyntheticTest, LongtailSet2IsElderly) {
  for (const Example& ex : data_.longtail2_test) {
    EXPECT_EQ(ex.age_segment, 2);
  }
}

TEST_F(JdSyntheticTest, LongtailHistoriesShorterThanFullTest) {
  double lt = 0.0, full = 0.0;
  for (const Example& ex : data_.longtail1_test) lt += ex.history_len;
  for (const Example& ex : data_.full_test) full += ex.history_len;
  lt /= data_.longtail1_test.size();
  full /= data_.full_test.size();
  EXPECT_LT(lt, full);
}

TEST_F(JdSyntheticTest, UserGroupsConsistent) {
  for (const Example& ex : data_.full_test) {
    if (ex.history_len == 0) {
      EXPECT_EQ(ex.user_group, UserGroup::kNewUser);
    } else if (ex.numeric[kFeatItemClickCnt] > 0.0f) {
      EXPECT_EQ(ex.user_group, UserGroup::kOldWithTargetOrder);
    } else {
      EXPECT_EQ(ex.user_group, UserGroup::kOldWithoutTargetOrder);
    }
  }
}

TEST_F(JdSyntheticTest, CategoryNewFlagMatchesFeatures) {
  for (const Example& ex : data_.full_test) {
    if (ex.is_category_new) {
      EXPECT_EQ(ex.numeric[kFeatCatClickCnt], 0.0f);
    } else {
      EXPECT_GT(ex.numeric[kFeatCatClickCnt], 0.0f);
    }
  }
}

TEST_F(JdSyntheticTest, DeterministicForSameSeed) {
  JdDataset again = JdSyntheticGenerator(SmallConfig()).Generate();
  ASSERT_EQ(again.train.size(), data_.train.size());
  for (size_t i = 0; i < data_.train.size(); ++i) {
    EXPECT_EQ(again.train[i].target_item, data_.train[i].target_item);
    EXPECT_EQ(again.train[i].label, data_.train[i].label);
    EXPECT_EQ(again.train[i].session_id, data_.train[i].session_id);
  }
}

TEST_F(JdSyntheticTest, DifferentSeedDifferentData) {
  JdConfig config = SmallConfig();
  config.seed = 12345;
  JdDataset other = JdSyntheticGenerator(config).Generate();
  bool any_diff = other.train.size() != data_.train.size();
  for (size_t i = 0; !any_diff && i < data_.train.size(); ++i) {
    any_diff = other.train[i].target_item != data_.train[i].target_item;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(JdSyntheticTest, OracleUtilityRanksBetterThanRandom) {
  // The noiseless utility must order positives above negatives much more
  // often than chance — the label model is anchored to it.
  int64_t correct = 0, total = 0;
  double pos_mean = 0.0, neg_mean = 0.0;
  int64_t pos_n = 0, neg_n = 0;
  for (const Example& ex : data_.full_test) {
    if (ex.label > 0.5f) {
      pos_mean += ex.oracle_utility;
      ++pos_n;
    } else {
      neg_mean += ex.oracle_utility;
      ++neg_n;
    }
  }
  ASSERT_GT(pos_n, 0);
  ASSERT_GT(neg_n, 0);
  EXPECT_GT(pos_mean / pos_n, neg_mean / neg_n);
  (void)correct;
  (void)total;
}

TEST_F(JdSyntheticTest, BehaviorSequencesRespectMaxHistory) {
  for (const Example& ex : data_.train) {
    EXPECT_LE(static_cast<int64_t>(ex.behavior_items.size()),
              SmallConfig().max_history);
  }
}

TEST_F(JdSyntheticTest, StylesCoverAllFour) {
  std::set<int64_t> styles;
  for (const Example& ex : data_.full_test) styles.insert(ex.latent_style);
  EXPECT_EQ(styles.size(), 4u);
}

}  // namespace
}  // namespace awmoe
