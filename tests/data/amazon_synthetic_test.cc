#include "data/amazon_synthetic.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace awmoe {
namespace {

AmazonConfig SmallConfig() {
  AmazonConfig config;
  config.num_users = 500;
  config.num_items = 200;
  config.num_categories = 8;
  config.brands_per_category = 4;
  config.seed = 321;
  return config;
}

class AmazonSyntheticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = AmazonSyntheticGenerator(SmallConfig()).Generate();
  }
  AmazonDataset data_;
};

TEST_F(AmazonSyntheticTest, RecommendationModeSet) {
  EXPECT_TRUE(data_.meta.recommendation_mode);
}

TEST_F(AmazonSyntheticTest, TrainTestSplitRoughly90To10) {
  double test_fraction =
      static_cast<double>(data_.test.size()) /
      static_cast<double>(data_.test.size() + data_.train.size());
  EXPECT_NEAR(test_fraction, 0.10, 0.04);
}

TEST_F(AmazonSyntheticTest, EveryUserContributesOnePair) {
  // 2 examples (1 pos + 1 neg) per user across both splits.
  EXPECT_EQ(data_.train.size() + data_.test.size(),
            static_cast<size_t>(2 * SmallConfig().num_users));
}

TEST_F(AmazonSyntheticTest, PairsShareSessionWithOppositeLabels) {
  std::map<int64_t, std::vector<const Example*>> sessions;
  for (const Example& ex : data_.train) {
    sessions[ex.session_id].push_back(&ex);
  }
  for (const auto& [id, members] : sessions) {
    ASSERT_EQ(members.size(), 2u);
    EXPECT_NE(members[0]->label, members[1]->label);
    EXPECT_EQ(members[0]->user_id, members[1]->user_id);
  }
}

TEST_F(AmazonSyntheticTest, NoQueryFields) {
  for (const Example& ex : data_.train) {
    EXPECT_EQ(ex.query_id, 0);
    EXPECT_EQ(ex.query_cat, 0);
  }
}

TEST_F(AmazonSyntheticTest, HistoryNonEmptyAndMostRecentFirst) {
  for (const Example& ex : data_.train) {
    EXPECT_GE(ex.behavior_items.size(), 1u);
    EXPECT_LE(static_cast<int64_t>(ex.behavior_items.size()),
              SmallConfig().max_history);
  }
}

TEST_F(AmazonSyntheticTest, PositiveTargetNotEqualToNegative) {
  std::map<int64_t, std::vector<const Example*>> sessions;
  for (const Example& ex : data_.test) sessions[ex.session_id].push_back(&ex);
  for (const auto& [id, members] : sessions) {
    ASSERT_EQ(members.size(), 2u);
    EXPECT_NE(members[0]->target_item, members[1]->target_item);
  }
}

TEST_F(AmazonSyntheticTest, SequentialStructureExists) {
  // Positives (true next review) should match the category of a recent
  // history item far more often than sampled negatives do — this is the
  // signal the ranking models must pick up.
  int64_t pos_match = 0, pos_total = 0, neg_match = 0, neg_total = 0;
  for (const Example& ex : data_.train) {
    bool match = ex.numeric[kFeatCatClickCnt] > 0.0f;
    if (ex.label > 0.5f) {
      pos_match += match;
      ++pos_total;
    } else {
      neg_match += match;
      ++neg_total;
    }
  }
  double pos_rate = static_cast<double>(pos_match) / pos_total;
  double neg_rate = static_cast<double>(neg_match) / neg_total;
  EXPECT_GT(pos_rate, neg_rate + 0.15);
}

TEST_F(AmazonSyntheticTest, Deterministic) {
  AmazonDataset again = AmazonSyntheticGenerator(SmallConfig()).Generate();
  ASSERT_EQ(again.train.size(), data_.train.size());
  for (size_t i = 0; i < data_.train.size(); ++i) {
    EXPECT_EQ(again.train[i].target_item, data_.train[i].target_item);
    EXPECT_EQ(again.train[i].label, data_.train[i].label);
  }
}

TEST_F(AmazonSyntheticTest, VocabulariesRespected) {
  for (const Example& ex : data_.train) {
    EXPECT_GT(ex.target_item, 0);
    EXPECT_LT(ex.target_item, data_.meta.num_items);
    EXPECT_LT(ex.target_brand, data_.meta.num_brands);
    for (int64_t b : ex.behavior_items) {
      EXPECT_GT(b, 0);
      EXPECT_LT(b, data_.meta.num_items);
    }
  }
}

}  // namespace
}  // namespace awmoe
