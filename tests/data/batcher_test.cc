#include "data/batcher.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace awmoe {
namespace {

Example MakeExample(int64_t id, int64_t history_len, float label) {
  Example ex;
  for (int64_t j = 0; j < history_len; ++j) {
    ex.behavior_items.push_back(10 + j);
    ex.behavior_cats.push_back(1 + j % 3);
    ex.behavior_brands.push_back(5 + j);
  }
  ex.target_item = id;
  ex.target_cat = 1;
  ex.target_brand = 2;
  ex.target_shop = 3;
  ex.query_id = 4;
  ex.query_cat = 1;
  ex.user_id = 100 + id;
  ex.session_id = 1000 + id;
  ex.age_segment = 1;
  ex.label = label;
  ex.numeric.assign(kNumNumericFeatures, static_cast<float>(id));
  ex.history_len = history_len;
  return ex;
}

DatasetMeta TestMeta() {
  DatasetMeta meta;
  meta.num_items = 64;
  meta.num_cats = 8;
  meta.num_brands = 32;
  meta.num_shops = 8;
  meta.num_queries = 8;
  meta.max_seq_len = 5;
  return meta;
}

TEST(StandardizerTest, ZeroMeanUnitVarianceAfterFit) {
  std::vector<Example> data;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Example ex = MakeExample(i % 50, 2, 0.0f);
    for (auto& v : ex.numeric) {
      v = static_cast<float>(rng.Normal(3.0, 2.0));
    }
    data.push_back(ex);
  }
  Standardizer standardizer;
  standardizer.Fit(data);
  ASSERT_TRUE(standardizer.fitted());

  // Transform the corpus and verify moments.
  double sum = 0.0, sum_sq = 0.0;
  int64_t n = 0;
  for (const Example& ex : data) {
    std::vector<float> z = standardizer.Transform(ex.numeric);
    for (float v : z) {
      sum += v;
      sum_sq += static_cast<double>(v) * v;
      ++n;
    }
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(StandardizerTest, ConstantFeaturePassesThroughCentred) {
  std::vector<Example> data;
  for (int i = 0; i < 10; ++i) {
    Example ex = MakeExample(i, 1, 0.0f);
    ex.numeric.assign(kNumNumericFeatures, 7.0f);
    data.push_back(ex);
  }
  Standardizer standardizer;
  standardizer.Fit(data);
  std::vector<float> z = standardizer.Transform(data[0].numeric);
  for (float v : z) EXPECT_NEAR(v, 0.0f, 1e-5f);
}

TEST(CollateBatchTest, ShapesAndPadding) {
  DatasetMeta meta = TestMeta();
  Example a = MakeExample(1, 2, 1.0f);
  Example b = MakeExample(2, 5, 0.0f);
  Batch batch = CollateBatch({&a, &b}, meta, nullptr);

  EXPECT_EQ(batch.size, 2);
  EXPECT_EQ(batch.seq_len, 5);
  // Row 0 padded beyond position 2.
  EXPECT_EQ(batch.behavior_items[0], 10);
  EXPECT_EQ(batch.behavior_items[1], 11);
  EXPECT_EQ(batch.behavior_items[2], 0);
  EXPECT_EQ(batch.behavior_mask(0, 1), 1.0f);
  EXPECT_EQ(batch.behavior_mask(0, 2), 0.0f);
  EXPECT_EQ(batch.behavior_mask(1, 4), 1.0f);
  EXPECT_EQ(batch.labels(0, 0), 1.0f);
  EXPECT_EQ(batch.labels(1, 0), 0.0f);
  EXPECT_EQ(batch.numeric.rows(), 2);
  EXPECT_EQ(batch.numeric.cols(), kNumNumericFeatures);
}

TEST(CollateBatchTest, TruncatesOverlongHistories) {
  DatasetMeta meta = TestMeta();
  Example a = MakeExample(1, 9, 1.0f);  // Longer than max_seq_len = 5.
  Batch batch = CollateBatch({&a}, meta, nullptr);
  EXPECT_EQ(batch.seq_len, 5);
  for (int64_t j = 0; j < 5; ++j) {
    EXPECT_EQ(batch.behavior_mask(0, j), 1.0f);
  }
}

TEST(CollateBatchTest, BehaviorColumnExtraction) {
  DatasetMeta meta = TestMeta();
  Example a = MakeExample(1, 3, 1.0f);
  Example b = MakeExample(2, 1, 0.0f);
  Batch batch = CollateBatch({&a, &b}, meta, nullptr);
  auto col0 = batch.BehaviorColumn(batch.behavior_items, 0);
  EXPECT_EQ(col0, (std::vector<int64_t>{10, 10}));
  auto col2 = batch.BehaviorColumn(batch.behavior_items, 2);
  EXPECT_EQ(col2, (std::vector<int64_t>{12, 0}));
  Matrix mask2 = batch.MaskColumn(2);
  EXPECT_EQ(mask2(0, 0), 1.0f);
  EXPECT_EQ(mask2(1, 0), 0.0f);
}

TEST(BatchIteratorTest, CoversAllExamplesOnce) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  for (int i = 0; i < 23; ++i) data.push_back(MakeExample(i, 1, 0.0f));
  BatchIterator it(&data, meta, 5, nullptr, nullptr);
  EXPECT_EQ(it.num_batches(), 5);

  std::multiset<int64_t> seen;
  Batch batch;
  int64_t batches = 0;
  while (it.Next(&batch)) {
    ++batches;
    for (int64_t id : batch.target_items) seen.insert(id);
  }
  EXPECT_EQ(batches, 5);
  EXPECT_EQ(seen.size(), 23u);
  // Sequential (no rng): first batch is examples 0..4 in order.
}

TEST(BatchIteratorTest, ShufflesWithRngButCoversAll) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  for (int i = 0; i < 40; ++i) data.push_back(MakeExample(i, 1, 0.0f));
  Rng rng(5);
  BatchIterator it(&data, meta, 8, nullptr, &rng);
  std::set<int64_t> seen;
  std::vector<int64_t> first_batch;
  Batch batch;
  while (it.Next(&batch)) {
    for (int64_t id : batch.target_items) seen.insert(id);
    if (first_batch.empty()) first_batch = batch.target_items;
  }
  EXPECT_EQ(seen.size(), 40u);
  // Shuffled: first batch unlikely to be identity order.
  bool identity = true;
  for (size_t i = 0; i < first_batch.size(); ++i) {
    if (first_batch[i] != static_cast<int64_t>(i)) identity = false;
  }
  EXPECT_FALSE(identity);
}

TEST(BatchIteratorTest, ResetStartsNewEpoch) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  for (int i = 0; i < 10; ++i) data.push_back(MakeExample(i, 1, 0.0f));
  BatchIterator it(&data, meta, 4, nullptr, nullptr);
  Batch batch;
  int64_t count = 0;
  while (it.Next(&batch)) ++count;
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(it.Next(&batch));
  it.Reset();
  EXPECT_TRUE(it.Next(&batch));
}

// Grouping mode: every batch carries its group boundaries as explicit
// slate starts, and a session longer than max_group_rows is split into
// consecutive sub-slates of at most the cap instead of emitting a
// slate a listwise model's length CHECK would abort on.
TEST(BatchIteratorTest, GroupingEmitsSlateStartsAndSplitsOversizedSessions) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  const int64_t sizes[] = {3, 10, 2};
  int64_t id = 0;
  for (int64_t s = 0; s < 3; ++s) {
    for (int64_t r = 0; r < sizes[s]; ++r) {
      Example ex = MakeExample(id++, 1, 0.0f);
      ex.session_id = s;
      data.push_back(ex);
    }
  }
  BatchIterator it(&data, meta, /*batch_size=*/6, nullptr, /*rng=*/nullptr,
                   /*group_by_session=*/true, /*max_group_rows=*/4);
  Batch batch;
  std::multiset<int64_t> seen;
  std::vector<int64_t> slate_sizes;
  while (it.Next(&batch)) {
    ASSERT_FALSE(batch.slate_starts.empty());
    EXPECT_EQ(batch.slate_starts[0], 0);
    for (size_t s = 0; s < batch.slate_starts.size(); ++s) {
      const int64_t begin = batch.slate_starts[s];
      const int64_t end = s + 1 < batch.slate_starts.size()
                              ? batch.slate_starts[s + 1]
                              : batch.size;
      ASSERT_GT(end, begin);
      EXPECT_LE(end - begin, 4);
      slate_sizes.push_back(end - begin);
      // A slate never mixes sessions, even after splitting.
      for (int64_t r = begin; r < end; ++r) {
        EXPECT_EQ(batch.session_ids[static_cast<size_t>(r)],
                  batch.session_ids[static_cast<size_t>(begin)]);
      }
    }
    for (int64_t t : batch.target_items) seen.insert(t);
  }
  EXPECT_EQ(seen.size(), 15u);  // Every row served exactly once.
  // Sequential order: the 10-row session splits 4+4+2, and 6-row
  // packing yields batches [3], [4], [4,2], [2].
  EXPECT_EQ(slate_sizes, (std::vector<int64_t>{3, 4, 4, 2, 2}));
}

// Two chunks of one split session can share a batch; the explicit
// slate starts keep them distinct slates even though every row carries
// the same session id (session-run derivation would merge them back
// into one over-long slate).
TEST(BatchIteratorTest, AdjacentChunksOfOneSessionStayDistinctSlates) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  for (int64_t r = 0; r < 10; ++r) {
    Example ex = MakeExample(r, 1, 0.0f);
    ex.session_id = 7;
    data.push_back(ex);
  }
  BatchIterator it(&data, meta, /*batch_size=*/8, nullptr, /*rng=*/nullptr,
                   /*group_by_session=*/true, /*max_group_rows=*/4);
  Batch batch;
  ASSERT_TRUE(it.Next(&batch));
  EXPECT_EQ(batch.size, 8);
  EXPECT_EQ(batch.slate_starts, (std::vector<int64_t>{0, 4}));
  for (int64_t r = 0; r < batch.size; ++r) {
    EXPECT_EQ(batch.session_ids[static_cast<size_t>(r)], 7);
  }
  ASSERT_TRUE(it.Next(&batch));
  EXPECT_EQ(batch.size, 2);
  EXPECT_EQ(batch.slate_starts, (std::vector<int64_t>{0}));
  EXPECT_FALSE(it.Next(&batch));
}

// Row mode (no grouping) tracks no slates: slate_starts stays empty so
// listwise consumers fall back to session-run derivation.
TEST(BatchIteratorTest, RowModeLeavesSlateStartsEmpty) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  for (int i = 0; i < 7; ++i) data.push_back(MakeExample(i, 1, 0.0f));
  BatchIterator it(&data, meta, 4, nullptr, nullptr);
  Batch batch;
  while (it.Next(&batch)) {
    EXPECT_TRUE(batch.slate_starts.empty());
  }
}

TEST(CollateBatchTest, StandardizerApplied) {
  DatasetMeta meta = TestMeta();
  std::vector<Example> data;
  for (int i = 0; i < 20; ++i) data.push_back(MakeExample(i, 1, 0.0f));
  Standardizer standardizer;
  standardizer.Fit(data);
  Batch batch = CollateBatch({&data[0]}, meta, &standardizer);
  std::vector<float> expected = standardizer.Transform(data[0].numeric);
  for (int64_t j = 0; j < batch.numeric.cols(); ++j) {
    EXPECT_FLOAT_EQ(batch.numeric(0, j), expected[static_cast<size_t>(j)]);
  }
}

}  // namespace
}  // namespace awmoe
