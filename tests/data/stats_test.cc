#include "data/stats.h"

#include <gtest/gtest.h>

namespace awmoe {
namespace {

Example Ex(int64_t session, int64_t user, int64_t query, float label,
           int64_t hist) {
  Example ex;
  ex.session_id = session;
  ex.user_id = user;
  ex.query_id = query;
  ex.label = label;
  ex.history_len = hist;
  return ex;
}

TEST(StatsTest, CountsDistinctEntities) {
  std::vector<Example> split = {
      Ex(1, 10, 100, 1.0f, 4), Ex(1, 10, 100, 0.0f, 4),
      Ex(2, 11, 101, 1.0f, 2), Ex(2, 11, 101, 0.0f, 2),
      Ex(3, 10, 100, 1.0f, 4),
  };
  SplitStats stats = ComputeSplitStats(split);
  EXPECT_EQ(stats.num_sessions, 3);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_queries, 2);
  EXPECT_EQ(stats.num_examples, 5);
  EXPECT_EQ(stats.num_positives, 3);
  EXPECT_EQ(stats.num_negatives, 2);
  EXPECT_NEAR(stats.neg_per_pos, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.examples_per_session, 5.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.mean_history_len, (4 + 4 + 2 + 2 + 4) / 5.0, 1e-9);
}

TEST(StatsTest, EmptySplit) {
  SplitStats stats = ComputeSplitStats({});
  EXPECT_EQ(stats.num_sessions, 0);
  EXPECT_EQ(stats.num_examples, 0);
  EXPECT_EQ(stats.neg_per_pos, 0.0);
}

TEST(StatsTest, RatioFormatting) {
  std::vector<Example> split;
  split.push_back(Ex(1, 1, 1, 1.0f, 0));
  for (int i = 0; i < 10; ++i) split.push_back(Ex(1, 1, 1, 0.0f, 0));
  SplitStats stats = ComputeSplitStats(split);
  EXPECT_EQ(FormatPosNegRatio(stats), "1 : 10.0");
}

}  // namespace
}  // namespace awmoe
